#include "proto/dataset.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace eadt::proto {
namespace {

DatasetRecipe mixed_recipe(Bytes total = 4 * kGB) {
  DatasetRecipe r;
  r.name = "test";
  r.total_bytes = total;
  r.bands = {
      {3 * kMB, 50 * kMB, 0.25},
      {50 * kMB, 256 * kMB, 0.35},
      {256 * kMB, 1 * kGB, 0.40},
  };
  return r;
}

TEST(DatasetGen, HitsTotalBytes) {
  const auto ds = generate_dataset(mixed_recipe(), Rng(1));
  const double total = static_cast<double>(ds.total_bytes());
  EXPECT_NEAR(total, static_cast<double>(4 * kGB), static_cast<double>(4 * kGB) * 0.01);
}

TEST(DatasetGen, RespectsBandShares) {
  const auto recipe = mixed_recipe(8 * kGB);
  const auto ds = generate_dataset(recipe, Rng(2));
  Bytes small = 0, medium = 0, large = 0;
  for (const auto& f : ds.files) {
    if (f.size <= 50 * kMB) small += f.size;
    else if (f.size <= 256 * kMB) medium += f.size;
    else large += f.size;
  }
  const double t = static_cast<double>(ds.total_bytes());
  EXPECT_NEAR(small / t, 0.25, 0.03);
  EXPECT_NEAR(medium / t, 0.35, 0.03);
  EXPECT_NEAR(large / t, 0.40, 0.03);
}

TEST(DatasetGen, SizesStayInsideBands) {
  const auto recipe = mixed_recipe();
  const auto ds = generate_dataset(recipe, Rng(3));
  for (const auto& f : ds.files) {
    EXPECT_GE(f.size, 1u);
    EXPECT_LE(f.size, 1 * kGB);
  }
}

TEST(DatasetGen, DeterministicForSameSeed) {
  const auto a = generate_dataset(mixed_recipe(), Rng(7));
  const auto b = generate_dataset(mixed_recipe(), Rng(7));
  ASSERT_EQ(a.count(), b.count());
  for (std::size_t i = 0; i < a.count(); ++i) EXPECT_EQ(a.files[i].size, b.files[i].size);
  const auto c = generate_dataset(mixed_recipe(), Rng(8));
  EXPECT_NE(a.count(), c.count());  // overwhelmingly likely
}

TEST(Partition, ClassifiesAgainstBdp) {
  Dataset ds;
  const Bytes bdp = 50 * kMB;
  ds.files = {{3 * kMB},            // Small (< BDP)
              {49 * kMB},           // Small
              {51 * kMB},           // Medium (1-20x BDP)
              {900 * kMB},          // Medium
              {1001 * kMB},         // Large (> 20x BDP)
              {10 * kGB}};          // Large
  const auto chunks = partition_files(ds, bdp);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].cls, SizeClass::kSmall);
  EXPECT_EQ(chunks[0].file_count(), 2u);
  EXPECT_EQ(chunks[1].cls, SizeClass::kMedium);
  EXPECT_EQ(chunks[1].file_count(), 2u);
  EXPECT_EQ(chunks[2].cls, SizeClass::kLarge);
  EXPECT_EQ(chunks[2].file_count(), 2u);
  EXPECT_EQ(chunks[0].total, 52 * kMB);
}

TEST(Partition, DropsEmptyClasses) {
  Dataset ds;
  ds.files = {{10 * kGB}, {5 * kGB}};
  const auto chunks = partition_files(ds, 50 * kMB);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].cls, SizeClass::kLarge);
}

TEST(Partition, TinyBdpPutsEverythingInLarge) {
  // The DIDCLAB LAN case: BDP ~ 25 KB makes every experiment file "Large",
  // which after merging leaves a single chunk — tuning cannot help, as the
  // paper observes.
  Dataset ds;
  ds.files = {{3 * kMB}, {100 * kMB}, {1 * kGB}};
  const auto chunks = partition_files(ds, 25 * kKB);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].cls, SizeClass::kLarge);
  EXPECT_EQ(chunks[0].file_count(), 3u);
}

TEST(Partition, AvgFileSize) {
  Chunk c{SizeClass::kSmall, {0, 1}, 10 * kMB};
  EXPECT_EQ(c.avg_file_size(), 5 * kMB);
  Chunk empty;
  EXPECT_EQ(empty.avg_file_size(), 0u);
}

TEST(MergeChunks, FoldsUndersizedIntoNeighbour) {
  Chunk small{SizeClass::kSmall, {0}, 1 * kMB};      // 1 file -> too few
  Chunk medium{SizeClass::kMedium, {1, 2, 3}, 300 * kMB};
  Chunk large{SizeClass::kLarge, {4, 5}, 10 * kGB};
  auto merged = merge_chunks({small, medium, large}, 2, 0.02);
  ASSERT_EQ(merged.size(), 2u);
  // Small folded into Medium (its following neighbour via i=0 -> dst=1...
  // the implementation folds into the previous chunk, or the next when first).
  EXPECT_EQ(merged[0].file_count(), 4u);
  EXPECT_EQ(merged[0].total, 300 * kMB + 1 * kMB);
}

TEST(MergeChunks, ByteFractionRule) {
  // Medium has plenty of files but a negligible byte share -> merged.
  Chunk small{SizeClass::kSmall, {0, 1, 2}, 5 * kGB};
  Chunk medium{SizeClass::kMedium, {3, 4, 5}, 10 * kMB};
  Chunk large{SizeClass::kLarge, {6, 7}, 5 * kGB};
  auto merged = merge_chunks({small, medium, large}, 2, 0.02);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].cls, SizeClass::kSmall);
  EXPECT_EQ(merged[0].file_count(), 6u);
}

TEST(MergeChunks, HealthyChunksUntouched) {
  Chunk a{SizeClass::kSmall, {0, 1, 2}, 2 * kGB};
  Chunk b{SizeClass::kLarge, {3, 4, 5}, 3 * kGB};
  const auto merged = merge_chunks({a, b}, 2, 0.02);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeChunks, SingleChunkPassesThrough) {
  Chunk a{SizeClass::kLarge, {0}, 1 * kGB};
  const auto merged = merge_chunks({a}, 2, 0.02);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].file_count(), 1u);
}

TEST(MergeChunks, CascadingMergesTerminate) {
  // Every chunk is undersized: everything collapses into one.
  Chunk a{SizeClass::kSmall, {0}, 1 * kMB};
  Chunk b{SizeClass::kMedium, {1}, 1 * kMB};
  Chunk c{SizeClass::kLarge, {2}, 1 * kMB};
  const auto merged = merge_chunks({a, b, c}, 2, 0.02);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].file_count(), 3u);
}

TEST(Dataset, TotalBytesAndCount) {
  Dataset ds;
  ds.files = {{1 * kMB}, {2 * kMB}};
  EXPECT_EQ(ds.total_bytes(), 3 * kMB);
  EXPECT_EQ(ds.count(), 2u);
}


TEST(Listing, ParsesSizesAndSkipsCommentsAndNames) {
  std::istringstream in(
      "# header comment\n"
      "3MB  /data/a.bin\n"
      "\n"
      "512KB /data/b with spaces.dat\n"
      "1073741824\n");
  const auto ds = dataset_from_listing(in);
  ASSERT_TRUE(ds.has_value());
  ASSERT_EQ(ds->count(), 3u);
  EXPECT_EQ(ds->files[0].size, 3 * kMB);
  EXPECT_EQ(ds->files[1].size, 512 * kKB);
  EXPECT_EQ(ds->files[2].size, 1 * kGB);
}

TEST(Listing, RejectsMalformedLinesWithLineNumber) {
  std::istringstream in("1MB ok\nnot-a-size file\n");
  std::string err;
  EXPECT_FALSE(dataset_from_listing(in, &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);

  std::istringstream zero("0 empty-file\n");
  EXPECT_FALSE(dataset_from_listing(zero, &err).has_value());
}

TEST(Listing, EmptyListingIsAnEmptyDataset) {
  std::istringstream in("# nothing here\n");
  const auto ds = dataset_from_listing(in);
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(ds->count(), 0u);
}

TEST(Listing, LoadedDatasetPartitionsNormally) {
  std::istringstream in("3MB a\n60MB b\n2GB c\n");
  const auto ds = dataset_from_listing(in);
  ASSERT_TRUE(ds.has_value());
  const auto chunks = partition_files(*ds, 50'000'000ULL);
  EXPECT_EQ(chunks.size(), 3u);
}

TEST(SizeClassNames, Strings) {
  EXPECT_STREQ(to_string(SizeClass::kSmall), "Small");
  EXPECT_STREQ(to_string(SizeClass::kMedium), "Medium");
  EXPECT_STREQ(to_string(SizeClass::kLarge), "Large");
}

}  // namespace
}  // namespace eadt::proto
