// Fault injection and failure-recovery semantics of the transfer engine.
#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "proto/faults.hpp"
#include "proto/session.hpp"
#include "test_env.hpp"

namespace eadt::proto {
namespace {

using testutil::dataset_of;
using testutil::mixed_dataset;
using testutil::small_env;

/// One chunk, `channels` data channels, no stealing complications.
TransferPlan one_chunk_plan(const Dataset& ds, int channels, int parallelism = 2) {
  TransferPlan plan;
  Chunk chunk{SizeClass::kLarge, {}, 0};
  for (std::uint32_t i = 0; i < ds.files.size(); ++i) {
    chunk.file_ids.push_back(i);
    chunk.total += ds.files[i].size;
  }
  plan.chunks = {chunk};
  plan.params = {{1, parallelism, channels}};
  return plan;
}

RunResult run_with(const Environment& env, const Dataset& ds, const TransferPlan& plan,
                   const FaultPlan& faults, SessionConfig cfg = {}) {
  TransferSession session(env, ds, plan, cfg);
  session.set_fault_plan(faults);
  return session.run();
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.end_system_energy, b.end_system_energy);
  EXPECT_EQ(a.network_energy, b.network_energy);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.channel_drops, b.faults.channel_drops);
  EXPECT_EQ(a.faults.checksum_failures, b.faults.checksum_failures);
  EXPECT_EQ(a.faults.wasted_bytes, b.faults.wasted_bytes);
  EXPECT_EQ(a.faults.wasted_joules, b.faults.wasted_joules);
  EXPECT_EQ(a.faults.channel_downtime, b.faults.channel_downtime);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].bytes, b.samples[i].bytes);
    EXPECT_EQ(a.samples[i].end_system_energy, b.samples[i].end_system_energy);
    EXPECT_EQ(a.samples[i].wasted_bytes, b.samples[i].wasted_bytes);
  }
}

TEST(FaultPlanDefaults, InactivePlanIsByteIdenticalToNoPlan) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = one_chunk_plan(ds, 3);
  TransferSession bare(env, ds, plan);
  const auto a = bare.run();
  const auto b = run_with(env, ds, plan, FaultPlan{});
  expect_identical(a, b);
  EXPECT_EQ(b.faults.retries, 0);
  EXPECT_EQ(b.faults.wasted_bytes, 0u);
  EXPECT_EQ(b.goodput_bytes(), b.bytes);
}

TEST(FaultPlanDefaults, ZeroFaultPlanReproducesGoldenNumbers) {
  // The golden pins of tests/test_golden.cpp must survive the fault
  // subsystem: a zero-fault plan changes nothing about the recorded
  // full-scale FutureGrid GO run, and runs with/without a plan are
  // bit-identical.
  static const testbeds::Testbed testbed = testbeds::futuregrid();
  static const proto::Dataset dataset = testbed.make_dataset();
  const auto bare = exp::run_algorithm(exp::Algorithm::kGo, testbed, dataset, 2);
  const auto faulted = exp::run_algorithm(exp::Algorithm::kGo, testbed, dataset, 2,
                                          SessionConfig{}, FaultPlan{});
  expect_identical(bare.result, faulted.result);
  EXPECT_NEAR(faulted.throughput_mbps(), 842, 842 * 0.02);
  EXPECT_NEAR(faulted.energy(), 24168, 24168 * 0.02);
}

TEST(FaultDeterminism, SameSeedIsBitIdentical) {
  const auto env = small_env(2);
  const auto ds = mixed_dataset();
  auto plan = one_chunk_plan(ds, 3);
  plan.placement = Placement::kRoundRobin;
  FaultPlan faults;
  faults.stochastic.channel_drop_rate = 0.5;
  faults.stochastic.checksum_failure_prob = 0.05;
  faults.retry.restart_markers = false;
  faults.seed = 1234;
  const auto a = run_with(env, ds, plan, faults);
  const auto b = run_with(env, ds, plan, faults);
  ASSERT_TRUE(a.completed);
  EXPECT_GT(a.faults.channel_drops, 0);
  expect_identical(a, b);
}

TEST(FaultDeterminism, DifferentSeedChangesTheRun) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = one_chunk_plan(ds, 3);
  FaultPlan faults;
  faults.stochastic.channel_drop_rate = 0.5;
  faults.seed = 1;
  auto other = faults;
  other.seed = 2;
  const auto a = run_with(env, ds, plan, faults);
  const auto b = run_with(env, ds, plan, other);
  // Both complete, but the fault histories diverge.
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_NE(a.duration, b.duration);
}

TEST(ChannelRecovery, KilledChannelRetriesAndCompletes) {
  const auto env = small_env();
  const auto ds = dataset_of({60 * kMB, 60 * kMB});
  const auto plan = one_chunk_plan(ds, 1);
  FaultPlan faults;
  faults.channel_drops.push_back({1.0, 0});  // mid first file
  faults.retry.restart_markers = false;      // legacy: full retransmission
  const auto r = run_with(env, ds, plan, faults);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.faults.channel_drops, 1);
  EXPECT_GE(r.faults.retries, 1);
  EXPECT_GT(r.faults.wasted_bytes, 0u);
  EXPECT_GT(r.faults.wasted_joules, 0.0);
  EXPECT_GT(r.faults.channel_downtime, 0.0);
  // Wire bytes exceed the dataset (the lost prefix moved twice); goodput
  // equals the dataset exactly.
  EXPECT_GT(r.bytes, ds.total_bytes());
  EXPECT_EQ(r.goodput_bytes(), ds.total_bytes());
  EXPECT_GT(r.avg_throughput(), r.avg_goodput());
}

TEST(ChannelRecovery, RestartMarkersResumeFromOffset) {
  const auto env = small_env();
  const auto ds = dataset_of({60 * kMB, 60 * kMB});
  const auto plan = one_chunk_plan(ds, 1);
  FaultPlan faults;
  faults.channel_drops.push_back({1.0, 0});
  faults.retry.restart_markers = true;
  const auto r = run_with(env, ds, plan, faults);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.faults.retries, 1);
  // Nothing is re-sent: wire bytes equal the dataset and no waste accrues.
  EXPECT_EQ(r.bytes, ds.total_bytes());
  EXPECT_EQ(r.faults.wasted_bytes, 0u);
}

TEST(ChannelRecovery, RepeatedDropsQuarantineTheSlot) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = one_chunk_plan(ds, 2);
  FaultPlan faults;
  faults.stochastic.channel_drop_rate = 4.0;  // a drop every ~0.25 s
  faults.retry.channel_retry_budget = 1;
  faults.retry.backoff_initial = 0.3;
  const auto r = run_with(env, ds, plan, faults);
  ASSERT_TRUE(r.completed);  // effective concurrency never falls below one
  EXPECT_GT(r.faults.quarantined_channels, 0);
  EXPECT_EQ(r.goodput_bytes(), ds.total_bytes());
}

TEST(ChecksumFailures, RejectedFilesAreRetransmitted) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = one_chunk_plan(ds, 2);
  FaultPlan faults;
  faults.stochastic.checksum_failure_prob = 0.15;
  faults.seed = 7;
  const auto r = run_with(env, ds, plan, faults);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.faults.checksum_failures, 0);
  EXPECT_GT(r.faults.wasted_bytes, 0u);
  EXPECT_EQ(r.goodput_bytes(), ds.total_bytes());
}

TEST(ServerOutage, SingleServerOutageDegradesWithoutAborting) {
  const auto env = small_env(2);
  const auto ds = mixed_dataset();
  auto plan = one_chunk_plan(ds, 4);
  plan.placement = Placement::kRoundRobin;
  FaultPlan faults;
  faults.outages.push_back({/*source_side=*/true, /*server=*/0, /*start=*/0.5,
                            /*duration=*/3.0});
  const auto r = run_with(env, ds, plan, faults);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.faults.server_outages, 1);
  EXPECT_NEAR(r.faults.server_downtime, 3.0, 0.01);
  EXPECT_EQ(r.goodput_bytes(), ds.total_bytes());
  // Degradation, not death: the clean run is strictly faster.
  TransferSession clean(env, ds, plan);
  const auto c = clean.run();
  EXPECT_GT(r.duration, c.duration);
}

TEST(ServerOutage, WholeSideDownPastTheGuardAborts) {
  const auto env = small_env();  // a single source server
  const auto ds = dataset_of({50 * kMB, 50 * kMB});
  const auto plan = one_chunk_plan(ds, 1);
  SessionConfig cfg;
  cfg.max_sim_time = 20.0;
  FaultPlan faults;
  faults.outages.push_back({true, 0, 0.5, 100.0});  // never recovers in time
  const auto r = run_with(env, ds, plan, faults, cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_LT(r.bytes, ds.total_bytes());
}

TEST(ServerOutage, WholeSideRecoveryResumesStrandedChannels) {
  const auto env = small_env();
  const auto ds = dataset_of({50 * kMB, 50 * kMB});
  const auto plan = one_chunk_plan(ds, 1);
  FaultPlan faults;
  faults.outages.push_back({true, 0, 0.5, 4.0});  // sole source server blinks
  const auto r = run_with(env, ds, plan, faults);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.faults.server_downtime, 4.0, 0.01);
  EXPECT_EQ(r.goodput_bytes(), ds.total_bytes());
}

TEST(PathBrownout, ReducedCapacitySlowsButFinishes) {
  const auto env = small_env();
  const auto ds = dataset_of({40 * kMB, 40 * kMB, 40 * kMB});
  const auto plan = one_chunk_plan(ds, 2);
  FaultPlan faults;
  faults.brownouts.push_back({0.5, 5.0, 0.25});
  const auto r = run_with(env, ds, plan, faults);
  ASSERT_TRUE(r.completed);
  TransferSession clean(env, ds, plan);
  const auto c = clean.run();
  EXPECT_GT(r.duration, c.duration);
  EXPECT_EQ(r.bytes, c.bytes);  // nothing lost, just slower
}

TEST(RobustnessSamples, WindowsReportWasteAndDownChannels) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = one_chunk_plan(ds, 2);
  SessionConfig cfg;
  cfg.sample_interval = 0.5;
  FaultPlan faults;
  faults.stochastic.channel_drop_rate = 1.0;
  faults.retry.restart_markers = false;
  faults.retry.backoff_initial = 1.0;
  const auto r = run_with(env, ds, plan, faults, cfg);
  ASSERT_TRUE(r.completed);
  Bytes window_waste = 0;
  int down_seen = 0;
  for (const auto& s : r.samples) {
    window_waste += s.wasted_bytes;
    down_seen += s.down_channels;
  }
  EXPECT_EQ(window_waste, r.faults.wasted_bytes);
  EXPECT_GT(down_seen, 0);
}

TEST(FaultPlanValidation, DefaultAndTypicalPlansAreAccepted) {
  EXPECT_FALSE(FaultPlan{}.validate().has_value());
  FaultPlan busy;
  busy.channel_drops.push_back({3.0, -1});
  busy.outages.push_back({true, 0, 5.0, 2.0});
  busy.brownouts.push_back({1.0, 2.0, 0.5});
  busy.brownouts.push_back({4.0, 1.0, 0.8});  // back to back, no overlap
  busy.stochastic.channel_drop_rate = 0.5;
  busy.stochastic.checksum_failure_prob = 0.01;
  EXPECT_FALSE(busy.validate().has_value());
}

TEST(FaultPlanValidation, RejectsOutOfRangeFields) {
  const auto message = [](FaultPlan plan) {
    const auto bad = plan.validate();
    EXPECT_TRUE(bad.has_value());
    return bad.value_or("");
  };
  FaultPlan p;
  p.channel_drops.push_back({-1.0, 0});
  EXPECT_NE(message(p).find("channel_drops"), std::string::npos);

  p = {};
  p.outages.push_back({true, 0, 1.0, -2.0});
  EXPECT_NE(message(p).find("outages"), std::string::npos);

  p = {};
  p.brownouts.push_back({1.0, 2.0, 1.5});  // capacity above nominal
  EXPECT_NE(message(p).find("capacity_factor"), std::string::npos);

  p = {};
  p.stochastic.channel_drop_rate = -0.1;
  EXPECT_NE(message(p).find("drop_rate"), std::string::npos);

  p = {};
  p.stochastic.checksum_failure_prob = 1.5;
  EXPECT_NE(message(p).find("checksum"), std::string::npos);

  p = {};
  p.retry.backoff_multiplier = 0.0;  // would re-dial instantly forever
  EXPECT_NE(message(p).find("multiplier"), std::string::npos);

  p = {};
  p.retry.backoff_jitter = 2.0;
  EXPECT_NE(message(p).find("jitter"), std::string::npos);

  p = {};
  p.retry.channel_retry_budget = -1;
  EXPECT_NE(message(p).find("budget"), std::string::npos);
}

TEST(FaultPlanValidation, RejectsOverlappingBrownouts) {
  FaultPlan p;
  p.brownouts.push_back({5.0, 3.0, 0.5});
  p.brownouts.push_back({1.0, 2.0, 0.5});  // unsorted input is handled
  EXPECT_FALSE(p.validate().has_value());
  p.brownouts.push_back({7.0, 1.0, 0.5});  // inside [5, 8)
  const auto bad = p.validate();
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->find("overlap"), std::string::npos);
}

TEST(FaultPlanValidation, SessionRefusesToRunAMalformedPlan) {
  const auto env = small_env();
  const auto ds = dataset_of({10 * kMB});
  FaultPlan p;
  p.stochastic.channel_drop_rate = -1.0;
  const auto r = run_with(env, ds, one_chunk_plan(ds, 1), p);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.bytes, 0u);
  EXPECT_NE(r.error.find("invalid FaultPlan"), std::string::npos) << r.error;
  EXPECT_FALSE(r.checkpoint.has_value());  // nothing ran, nothing to resume
}

TEST(RetryBackoff, GrowsGeometricallyAndHitsTheCeiling) {
  RetryPolicy retry;
  retry.backoff_initial = 1.0;
  retry.backoff_multiplier = 2.0;
  retry.backoff_max = 5.0;
  retry.backoff_jitter = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(retry_backoff_delay(retry, 1, rng), 1.0);
  EXPECT_DOUBLE_EQ(retry_backoff_delay(retry, 2, rng), 2.0);
  EXPECT_DOUBLE_EQ(retry_backoff_delay(retry, 3, rng), 4.0);
  EXPECT_DOUBLE_EQ(retry_backoff_delay(retry, 4, rng), 5.0);   // capped
  EXPECT_DOUBLE_EQ(retry_backoff_delay(retry, 10, rng), 5.0);  // stays capped
}

TEST(RetryBackoff, JitterStaysInsideItsBand) {
  RetryPolicy retry;
  retry.backoff_initial = 2.0;
  retry.backoff_multiplier = 1.0;
  retry.backoff_jitter = 0.25;
  Rng rng(42);
  double lo = 1e9, hi = 0.0;
  for (int i = 0; i < 200; ++i) {
    const Seconds d = retry_backoff_delay(retry, 1, rng);
    EXPECT_GE(d, 2.0 * (1.0 - 0.25) - 1e-12);
    EXPECT_LE(d, 2.0 * (1.0 + 0.25) + 1e-12);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, 2.0);  // the band is actually explored on both sides
  EXPECT_GT(hi, 2.0);
}

TEST(RetryBackoff, ZeroBudgetQuarantinesOnTheFirstDrop) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = one_chunk_plan(ds, 2);
  FaultPlan faults;
  faults.channel_drops.push_back({1.0, 0});
  faults.retry.channel_retry_budget = 0;
  const auto r = run_with(env, ds, plan, faults);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.faults.quarantined_channels, 1);
  EXPECT_EQ(r.goodput_bytes(), ds.total_bytes());

  // Budget 1 absorbs that single drop without losing the slot.
  faults.retry.channel_retry_budget = 1;
  const auto lenient = run_with(env, ds, plan, faults);
  ASSERT_TRUE(lenient.completed);
  EXPECT_EQ(lenient.faults.quarantined_channels, 0);
}

TEST(RetryBackoff, LegacyRetransmissionPaysForEveryDropOfTheSameFile) {
  // Without restart markers a file dropped twice re-sends its prefix twice;
  // the journal/waste accounting must reflect both losses.
  const auto env = small_env();
  const auto ds = dataset_of({80 * kMB});
  const auto plan = one_chunk_plan(ds, 1);
  FaultPlan once;
  once.channel_drops.push_back({0.3, 0});
  once.retry.restart_markers = false;
  once.retry.backoff_initial = 0.2;
  auto twice = once;
  twice.channel_drops.push_back({1.2, 0});  // hits the retransmission too

  const auto a = run_with(env, ds, plan, once);
  const auto b = run_with(env, ds, plan, twice);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.faults.channel_drops, 1);
  EXPECT_EQ(b.faults.channel_drops, 2);
  EXPECT_GT(b.faults.wasted_bytes, a.faults.wasted_bytes);
  EXPECT_GT(b.bytes, a.bytes);
  // Goodput is invariant: every drop wastes wire bytes, never unique bytes.
  EXPECT_EQ(a.goodput_bytes(), ds.total_bytes());
  EXPECT_EQ(b.goodput_bytes(), ds.total_bytes());
}

}  // namespace
}  // namespace eadt::proto
