#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <string>

namespace eadt::net {
namespace {

TEST(Topology, XsedeRouteShape) {
  const Route r = xsede_route();
  // Symmetric campus chains on both sides of Internet2 (Figure 9a).
  EXPECT_EQ(r.size(), 6u);
  EXPECT_EQ(r.count(DeviceKind::kEdgeSwitch), 2u);
  EXPECT_EQ(r.count(DeviceKind::kEnterpriseSwitch), 2u);
  EXPECT_EQ(r.count(DeviceKind::kEdgeRouter), 2u);
  EXPECT_EQ(r.count(DeviceKind::kMetroRouter), 0u);
}

TEST(Topology, FuturegridRouteHasMetroRouters) {
  const Route r = futuregrid_route();
  // Figure 9b: the Chicago-Texas path rides metro routers — the most
  // power-hungry devices in Table 1, which is why FutureGrid's network
  // share of total energy is the largest (Figure 10).
  EXPECT_EQ(r.count(DeviceKind::kMetroRouter), 3u);
  EXPECT_EQ(r.count(DeviceKind::kEdgeSwitch), 2u);
}

TEST(Topology, DidclabIsSingleSwitch) {
  const Route r = didclab_route();
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.count(DeviceKind::kEdgeSwitch), 1u);
}

TEST(Topology, DeviceKindNames) {
  EXPECT_STREQ(to_string(DeviceKind::kEnterpriseSwitch), "enterprise-switch");
  EXPECT_STREQ(to_string(DeviceKind::kEdgeSwitch), "edge-switch");
  EXPECT_STREQ(to_string(DeviceKind::kMetroRouter), "metro-router");
  EXPECT_STREQ(to_string(DeviceKind::kEdgeRouter), "edge-router");
}

TEST(Topology, CountOnEmptyRoute) {
  Route r;
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.count(DeviceKind::kEdgeSwitch), 0u);
}

}  // namespace
}  // namespace eadt::net
