#include "testbeds/testbeds.hpp"

#include <gtest/gtest.h>

namespace eadt::testbeds {
namespace {

TEST(Testbeds, XsedeMatchesFigure1) {
  const auto t = xsede();
  EXPECT_DOUBLE_EQ(t.env.path.bandwidth, gbps(10.0));
  EXPECT_DOUBLE_EQ(t.env.path.rtt, 0.040);
  EXPECT_EQ(t.env.path.tcp_buffer, 32 * kMB);
  EXPECT_EQ(t.env.source.servers.size(), 4u);  // four DTNs per site
  EXPECT_EQ(t.env.destination.servers.size(), 4u);
  EXPECT_EQ(t.env.source.servers[0].cores, 4);
  EXPECT_EQ(t.env.bdp(), 50'000'000ULL);
}

TEST(Testbeds, FuturegridMatchesFigure1) {
  const auto t = futuregrid();
  EXPECT_DOUBLE_EQ(t.env.path.bandwidth, gbps(1.0));
  EXPECT_DOUBLE_EQ(t.env.path.rtt, 0.028);
  EXPECT_EQ(t.env.bdp(), 3'500'000ULL);
  EXPECT_EQ(t.env.route.count(net::DeviceKind::kMetroRouter), 3u);
}

TEST(Testbeds, DidclabIsLanWithSingleDisk) {
  const auto t = didclab();
  EXPECT_DOUBLE_EQ(t.env.path.bandwidth, gbps(1.0));
  EXPECT_LT(t.env.path.rtt, 0.001);
  EXPECT_EQ(t.env.source.servers.size(), 1u);
  EXPECT_EQ(t.env.source.servers[0].disk.kind, host::DiskKind::kSingleDisk);
  EXPECT_EQ(t.env.route.size(), 1u);
}

TEST(Testbeds, DatasetRecipesMatchSection3) {
  const auto xs = xsede();
  EXPECT_EQ(xs.recipe.total_bytes, 160ULL * kGB);
  EXPECT_EQ(xs.recipe.bands.front().min_size, 3 * kMB);
  EXPECT_EQ(xs.recipe.bands.back().max_size, 20 * kGB);

  const auto fg = futuregrid();
  EXPECT_EQ(fg.recipe.total_bytes, 40ULL * kGB);
  EXPECT_EQ(fg.recipe.bands.back().max_size, 5 * kGB);
  EXPECT_EQ(didclab().recipe.total_bytes, 40ULL * kGB);
}

TEST(Testbeds, DatasetGenerationIsDeterministic) {
  const auto t = futuregrid();
  const auto a = t.make_dataset();
  const auto b = t.make_dataset();
  ASSERT_EQ(a.count(), b.count());
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  const double total = static_cast<double>(a.total_bytes());
  EXPECT_NEAR(total, static_cast<double>(t.recipe.total_bytes), total * 0.02);
}

TEST(Testbeds, BandSharesSumToOne) {
  for (const auto& t : all_testbeds()) {
    double sum = 0.0;
    for (const auto& b : t.recipe.bands) sum += b.byte_share;
    EXPECT_NEAR(sum, 1.0, 1e-9) << t.env.name;
  }
}

TEST(Testbeds, AllHaveConsistentEndpoints) {
  for (const auto& t : all_testbeds()) {
    EXPECT_FALSE(t.env.source.servers.empty()) << t.env.name;
    EXPECT_FALSE(t.env.destination.servers.empty()) << t.env.name;
    for (const auto& s : t.env.source.servers) {
      EXPECT_GT(s.per_core_goodput, 0.0);
      EXPECT_GT(s.nic_speed, 0.0);
      EXPECT_GT(s.disk.max_bandwidth, 0.0);
    }
    EXPECT_GT(t.env.source.power.cpu_scale, 0.0);
    EXPECT_GT(t.default_max_channels, 0);
  }
}

}  // namespace
}  // namespace eadt::testbeds
