#include "exp/runner.hpp"

#include <gtest/gtest.h>

namespace eadt::exp {
namespace {

testbeds::Testbed tiny_didclab() {
  auto t = testbeds::didclab();
  t.recipe.total_bytes /= 64;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / 64, band.min_size * 2);
  }
  return t;
}

TEST(Runner, AlgorithmNames) {
  EXPECT_STREQ(to_string(Algorithm::kGuc), "GUC");
  EXPECT_STREQ(to_string(Algorithm::kGo), "GO");
  EXPECT_STREQ(to_string(Algorithm::kSc), "SC");
  EXPECT_STREQ(to_string(Algorithm::kMinE), "MinE");
  EXPECT_STREQ(to_string(Algorithm::kProMc), "ProMC");
  EXPECT_STREQ(to_string(Algorithm::kHtee), "HTEE");
  EXPECT_STREQ(to_string(Algorithm::kBf), "BF");
}

TEST(Runner, FigureAlgorithmListMatchesThePaperOrder) {
  const auto algorithms = figure_algorithms();
  ASSERT_EQ(algorithms.size(), 6u);
  EXPECT_EQ(algorithms.front(), Algorithm::kGuc);
  EXPECT_EQ(algorithms.back(), Algorithm::kHtee);
}

TEST(Runner, SweepLevelLists) {
  EXPECT_EQ(figure_concurrency_levels(), (std::vector<int>{1, 2, 4, 6, 8, 10, 12}));
  const auto bf = bf_concurrency_levels();
  ASSERT_EQ(bf.size(), 20u);
  EXPECT_EQ(bf.front(), 1);
  EXPECT_EQ(bf.back(), 20);
  EXPECT_EQ(sla_target_percents(), (std::vector<double>{95, 90, 80, 70, 50}));
}

TEST(Runner, OutcomeAccessors) {
  RunOutcome out;
  out.result.duration = 4.0;
  out.result.bytes = static_cast<Bytes>(1e9);  // 2000 Mbps
  out.result.end_system_energy = 500.0;
  EXPECT_NEAR(out.throughput_mbps(), 2000.0, 1e-9);
  EXPECT_DOUBLE_EQ(out.energy(), 500.0);
  EXPECT_NEAR(out.ratio(), 2e9 / 500.0, 1e-6);
}

TEST(Runner, GucAndGoIgnoreTheConcurrencyKnob) {
  const auto t = tiny_didclab();
  const auto ds = t.make_dataset();
  for (const auto a : {Algorithm::kGuc, Algorithm::kGo}) {
    const auto at1 = run_algorithm(a, t, ds, 1);
    const auto at12 = run_algorithm(a, t, ds, 12);
    EXPECT_DOUBLE_EQ(at1.result.duration, at12.result.duration) << to_string(a);
    EXPECT_DOUBLE_EQ(at1.result.end_system_energy, at12.result.end_system_energy)
        << to_string(a);
  }
}

TEST(Runner, ChosenConcurrencyReporting) {
  const auto t = tiny_didclab();
  const auto ds = t.make_dataset();
  EXPECT_EQ(run_algorithm(Algorithm::kGuc, t, ds, 7).chosen_concurrency, 1);
  EXPECT_EQ(run_algorithm(Algorithm::kGo, t, ds, 7).chosen_concurrency, 2);
  EXPECT_EQ(run_algorithm(Algorithm::kSc, t, ds, 7).chosen_concurrency, 7);
  proto::SessionConfig cfg;
  cfg.sample_interval = 0.5;
  const auto htee = run_algorithm(Algorithm::kHtee, t, ds, 7, cfg);
  EXPECT_GE(htee.chosen_concurrency, 1);
  EXPECT_LE(htee.chosen_concurrency, 7);
}

TEST(Runner, BfMatchesProMcExactly) {
  const auto t = tiny_didclab();
  const auto ds = t.make_dataset();
  const auto bf = run_algorithm(Algorithm::kBf, t, ds, 4);
  const auto promc = run_algorithm(Algorithm::kProMc, t, ds, 4);
  EXPECT_DOUBLE_EQ(bf.result.duration, promc.result.duration);
  EXPECT_DOUBLE_EQ(bf.result.end_system_energy, promc.result.end_system_energy);
}

TEST(Runner, SlaOutcomeShortfallSigns) {
  const auto t = tiny_didclab();
  const auto ds = t.make_dataset();
  const auto promc = run_algorithm(Algorithm::kProMc, t, ds, 1);
  // A 10 % target is trivially overshot on this LAN.
  const auto out = run_slaee(t, ds, 10.0, promc.result.avg_throughput(), 4);
  EXPECT_TRUE(out.result.completed);
  EXPECT_LT(out.shortfall_percent(), 0.0);
  EXPECT_GT(out.deviation_percent(), 0.0);
  EXPECT_NEAR(out.deviation_percent(), -out.shortfall_percent(), 1e-9);
}

}  // namespace
}  // namespace eadt::exp
