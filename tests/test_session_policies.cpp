// Steal-policy and channel-management behaviour of the transfer engine.
#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "proto/session.hpp"
#include "test_env.hpp"

namespace eadt::proto {
namespace {

using testutil::dataset_of;
using testutil::small_env;

/// Two chunks: a Small one with many files, a Large one with a few big files.
struct TwoChunkSetup {
  Dataset dataset;
  TransferPlan plan;
};

TwoChunkSetup two_chunks(int small_channels, int large_channels, StealPolicy steal) {
  TwoChunkSetup s;
  Chunk small{SizeClass::kSmall, {}, 0};
  for (int i = 0; i < 30; ++i) {
    small.file_ids.push_back(static_cast<std::uint32_t>(s.dataset.files.size()));
    s.dataset.files.push_back({2 * kMB});
    small.total += 2 * kMB;
  }
  Chunk large{SizeClass::kLarge, {}, 0};
  for (int i = 0; i < 4; ++i) {
    large.file_ids.push_back(static_cast<std::uint32_t>(s.dataset.files.size()));
    s.dataset.files.push_back({120 * kMB});
    large.total += 120 * kMB;
  }
  s.plan.chunks = {small, large};
  s.plan.params = {{8, 1, small_channels}, {1, 1, large_channels}};
  s.plan.steal = steal;
  return s;
}

TEST(StealPolicy, NoneStrandsAnUnstaffedChunk) {
  // The Large chunk gets zero channels and nobody may help it: the run must
  // hit the time guard with exactly the Small chunk's bytes moved.
  const auto env = small_env();
  auto setup = two_chunks(2, 0, StealPolicy::kNone);
  SessionConfig cfg;
  cfg.max_sim_time = 30.0;
  TransferSession session(env, setup.dataset, setup.plan, cfg);
  const auto r = session.run();
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.bytes, 30u * 2 * kMB);
}

TEST(StealPolicy, AllFinishesEverything) {
  const auto env = small_env();
  auto setup = two_chunks(2, 0, StealPolicy::kAll);
  TransferSession session(env, setup.dataset, setup.plan);
  const auto r = session.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, setup.dataset.total_bytes());
}

TEST(StealPolicy, NonLargeOnlyNeverGrowsTheLargeChunk) {
  // Small finishes early; its freed channels must NOT pile onto Large:
  // once only Large remains, at most its planned single channel stays busy.
  const auto env = small_env();
  auto setup = two_chunks(4, 1, StealPolicy::kNonLargeOnly);
  SessionConfig cfg;
  cfg.sample_interval = 0.5;
  TransferSession session(env, setup.dataset, setup.plan, cfg);
  const auto r = session.run();
  ASSERT_TRUE(r.completed);
  // The tail samples (small chunk long gone) must show exactly one channel.
  ASSERT_GE(r.samples.size(), 4u);
  for (std::size_t i = r.samples.size() - 2; i < r.samples.size(); ++i) {
    EXPECT_LE(r.samples[i].active_channels, 1) << "sample " << i;
  }
}

TEST(StealPolicy, NonLargeOnlyStillServesALargeOnlyPlan) {
  // Large gets zero planned channels; once nothing else lives it must still
  // receive one ("MinE assigns a single channel to the large chunk
  // regardless").
  const auto env = small_env();
  auto setup = two_chunks(3, 0, StealPolicy::kNonLargeOnly);
  TransferSession session(env, setup.dataset, setup.plan);
  const auto r = session.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, setup.dataset.total_bytes());
}

TEST(StealPolicy, AllConvergesChannelsOntoTheSurvivingChunk) {
  const auto env = small_env();
  auto setup = two_chunks(4, 2, StealPolicy::kAll);
  SessionConfig cfg;
  cfg.sample_interval = 0.5;
  TransferSession session(env, setup.dataset, setup.plan, cfg);
  const auto r = session.run();
  ASSERT_TRUE(r.completed);
  // After the small chunk drains, more than the original two channels work
  // the large one (4 files allow up to 4).
  int max_late = 0;
  for (std::size_t i = r.samples.size() / 2; i < r.samples.size(); ++i) {
    max_late = std::max(max_late, r.samples[i].active_channels);
  }
  EXPECT_GE(max_late, 3);
}

TEST(NetworkEnergy, DependsOnlyOnBytesNotOnTheAlgorithm) {
  // Load-dependent device energy is per-packet: every complete transfer of
  // the same dataset over the same route costs the same network Joules.
  const auto env = small_env();
  const auto ds = testutil::mixed_dataset();
  TransferSession a(env, ds, baselines::plan_promc(env, ds, 6));
  TransferSession b(env, ds, baselines::plan_guc(env, ds));
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_TRUE(ra.completed);
  ASSERT_TRUE(rb.completed);
  EXPECT_NEAR(ra.network_energy, rb.network_energy, ra.network_energy * 0.01);
}

TEST(Concurrency, TargetIsClampedToAtLeastOne) {
  const auto env = small_env();
  const auto ds = dataset_of({10 * kMB, 10 * kMB});
  struct Zeroer final : Controller {
    void on_sample(TransferSession& s, const SampleStats&) override {
      s.set_total_concurrency(0);  // hostile input
    }
  } zeroer;
  SessionConfig cfg;
  cfg.sample_interval = 0.2;
  TransferSession session(env, ds, baselines::plan_promc(env, ds, 2), cfg);
  const auto r = session.run(&zeroer);
  EXPECT_TRUE(r.completed);  // clamp keeps one channel alive
}

TEST(Placement, RoundRobinCyclesThroughServers) {
  const auto env = small_env(3);
  Dataset ds = dataset_of({50 * kMB, 50 * kMB, 50 * kMB, 50 * kMB, 50 * kMB,
                           50 * kMB});
  auto plan = baselines::plan_guc(env, ds, /*concurrency=*/6);
  TransferSession session(env, ds, plan);
  const auto r = session.run();
  ASSERT_TRUE(r.completed);
  // Six channels over three servers: every server participated.
  for (const auto& s : r.source_servers) EXPECT_GT(s.active_time, 0.0) << s.name;
  for (const auto& s : r.destination_servers) EXPECT_GT(s.active_time, 0.0) << s.name;
}

}  // namespace
}  // namespace eadt::proto
