#include "util/units.hpp"

#include <gtest/gtest.h>

namespace eadt {
namespace {

TEST(Units, ByteLiterals) {
  EXPECT_EQ(1_KB, 1024ULL);
  EXPECT_EQ(1_MB, 1024ULL * 1024);
  EXPECT_EQ(1_GB, 1024ULL * 1024 * 1024);
  EXPECT_EQ(3_MB, 3 * kMB);
}

TEST(Units, RateConversions) {
  EXPECT_DOUBLE_EQ(mbps(100.0), 1e8);
  EXPECT_DOUBLE_EQ(gbps(10.0), 1e10);
  EXPECT_DOUBLE_EQ(to_mbps(mbps(250.0)), 250.0);
  EXPECT_DOUBLE_EQ(to_gbps(gbps(1.5)), 1.5);
}

TEST(Units, BitsAndSizeReporting) {
  EXPECT_DOUBLE_EQ(to_bits(1), 8.0);
  EXPECT_DOUBLE_EQ(to_mb(2 * kMB), 2.0);
  EXPECT_DOUBLE_EQ(to_gb(3 * kGB), 3.0);
}

TEST(Units, TransferTime) {
  // 1 GB at 8 Gbit/s is ~1.07 seconds (binary GB).
  EXPECT_NEAR(transfer_time(1_GB, gbps(8.0)), 1.0737, 1e-3);
  EXPECT_GT(transfer_time(1_GB, 0.0), 1e100);  // "infinite" sentinel
}

TEST(Units, BdpMatchesPaperExamples) {
  // XSEDE: 10 Gbps * 40 ms = 50 MB (decimal) = ~47.7 binary MB.
  const Bytes bdp = bdp_bytes(gbps(10.0), 0.040);
  EXPECT_EQ(bdp, 50'000'000ULL);
  // FutureGrid: 1 Gbps * 28 ms = 3.5 MB.
  EXPECT_EQ(bdp_bytes(gbps(1.0), 0.028), 3'500'000ULL);
  // Degenerate inputs.
  EXPECT_EQ(bdp_bytes(0.0, 1.0), 0ULL);
  EXPECT_EQ(bdp_bytes(gbps(1.0), 0.0), 0ULL);
}

}  // namespace
}  // namespace eadt
