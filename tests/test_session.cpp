#include "proto/session.hpp"

#include <gtest/gtest.h>

#include "test_env.hpp"

namespace eadt::proto {
namespace {

using testutil::dataset_of;
using testutil::mixed_dataset;
using testutil::small_env;

TransferPlan one_chunk_plan(const Dataset& ds, int channels, int parallelism = 1,
                            int pipelining = 1) {
  TransferPlan plan;
  Chunk all{SizeClass::kLarge, {}, 0};
  for (std::uint32_t i = 0; i < ds.files.size(); ++i) {
    all.file_ids.push_back(i);
    all.total += ds.files[i].size;
  }
  plan.chunks.push_back(all);
  plan.params.push_back({pipelining, parallelism, channels});
  return plan;
}

TEST(Session, TransfersAllBytes) {
  const auto env = small_env();
  const auto ds = dataset_of({10 * kMB, 20 * kMB, 30 * kMB});
  TransferSession s(env, ds, one_chunk_plan(ds, 2));
  const auto r = s.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 60 * kMB);
  EXPECT_GT(r.duration, 0.0);
  EXPECT_GT(r.end_system_energy, 0.0);
  EXPECT_GT(r.network_energy, 0.0);
}

TEST(Session, DeterministicAcrossRuns) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  TransferSession a(env, ds, one_chunk_plan(ds, 3));
  TransferSession b(env, ds, one_chunk_plan(ds, 3));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.duration, rb.duration);
  EXPECT_DOUBLE_EQ(ra.end_system_energy, rb.end_system_energy);
  EXPECT_EQ(ra.bytes, rb.bytes);
}

TEST(Session, ThroughputBoundedByLink) {
  const auto env = small_env();
  const auto ds = dataset_of({200 * kMB, 200 * kMB, 200 * kMB, 200 * kMB});
  TransferSession s(env, ds, one_chunk_plan(ds, 4, 2));
  const auto r = s.run();
  EXPECT_LE(r.avg_throughput(), env.path.bandwidth * 1.001);
}

TEST(Session, MoreChannelsHelpOnParallelStorage) {
  const auto env = small_env();
  const auto ds = dataset_of({100 * kMB, 100 * kMB, 100 * kMB, 100 * kMB});
  TransferSession s1(env, ds, one_chunk_plan(ds, 1));
  TransferSession s4(env, ds, one_chunk_plan(ds, 4));
  EXPECT_GT(s4.run().avg_throughput(), s1.run().avg_throughput() * 1.5);
}

TEST(Session, PipeliningRescuesSmallFiles) {
  const auto env = small_env();
  // 200 x 1 MiB files over 20 ms RTT: without pipelining each file pays a
  // full RTT of control stall plus a cold window.
  Dataset ds;
  for (int i = 0; i < 200; ++i) ds.files.push_back({1 * kMB});
  TransferSession no_pp(env, ds, one_chunk_plan(ds, 2, 1, 1));
  TransferSession pp(env, ds, one_chunk_plan(ds, 2, 1, 8));
  const auto r_no = no_pp.run();
  const auto r_pp = pp.run();
  EXPECT_GT(r_pp.avg_throughput(), r_no.avg_throughput() * 1.3);
  // Faster transfer at comparable power also means less energy.
  EXPECT_LT(r_pp.end_system_energy, r_no.end_system_energy);
}

TEST(Session, ParallelismHelpsWhenBufferBelowBdp) {
  auto env = small_env();
  env.path = {gbps(2.0), 0.040, 2 * kMB, 1500};  // window cap = 400 Mbps
  env.source.servers[0].per_core_goodput = gbps(1.0);
  env.destination.servers[0].per_core_goodput = gbps(1.0);
  env.source.servers[0].disk.max_bandwidth = gbps(4.0);
  env.destination.servers[0].disk.max_bandwidth = gbps(4.0);
  const auto ds = dataset_of({300 * kMB, 300 * kMB});
  TransferSession p1(env, ds, one_chunk_plan(ds, 1, 1));
  TransferSession p2(env, ds, one_chunk_plan(ds, 1, 2));
  EXPECT_GT(p2.run().avg_throughput(), p1.run().avg_throughput() * 1.5);
}

TEST(Session, SingleDiskDegradesWithConcurrency) {
  auto env = small_env();
  for (auto* ep : {&env.source, &env.destination}) {
    ep->servers[0].disk = {host::DiskKind::kSingleDisk, mbps(700.0), 0.0, 0.15};
  }
  const auto ds = dataset_of({100 * kMB, 100 * kMB, 100 * kMB, 100 * kMB,
                              100 * kMB, 100 * kMB, 100 * kMB, 100 * kMB});
  TransferSession s1(env, ds, one_chunk_plan(ds, 1));
  TransferSession s8(env, ds, one_chunk_plan(ds, 8));
  const auto r1 = s1.run();
  const auto r8 = s8.run();
  EXPECT_GT(r1.avg_throughput(), r8.avg_throughput());
  EXPECT_LT(r1.end_system_energy, r8.end_system_energy);
}

TEST(Session, RoundRobinPlacementActivatesMoreServers) {
  const auto env = small_env(2);
  const auto ds = dataset_of({100 * kMB, 100 * kMB, 100 * kMB, 100 * kMB});
  auto packed = one_chunk_plan(ds, 2);
  packed.placement = Placement::kPacked;
  auto spread = one_chunk_plan(ds, 2);
  spread.placement = Placement::kRoundRobin;

  TransferSession sp(env, ds, packed);
  TransferSession ss(env, ds, spread);
  const auto rp = sp.run();
  const auto rs = ss.run();

  auto active_servers = [](const RunResult& r) {
    int n = 0;
    for (const auto& s : r.source_servers) n += s.active_time > 0.0 ? 1 : 0;
    return n;
  };
  EXPECT_EQ(active_servers(rp), 1);
  EXPECT_EQ(active_servers(rs), 2);
  // Spreading wakes a second server: more energy (the Globus Online effect).
  EXPECT_GT(rs.end_system_energy, rp.end_system_energy * 1.05);
}

TEST(Session, SequentialChunksRunOneAtATime) {
  const auto env = small_env();
  Dataset ds = dataset_of({5 * kMB, 5 * kMB, 80 * kMB, 80 * kMB});
  TransferPlan plan;
  plan.chunks.push_back({SizeClass::kSmall, {0, 1}, 10 * kMB});
  plan.chunks.push_back({SizeClass::kLarge, {2, 3}, 160 * kMB});
  plan.params.push_back({4, 1, 2});
  plan.params.push_back({1, 1, 2});
  plan.sequential_chunks = true;
  TransferSession s(env, ds, plan);
  const auto r = s.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 170 * kMB);
  // With only 2 channels at a time, never more than 2 active in any sample.
  for (const auto& sample : r.samples) EXPECT_LE(sample.active_channels, 2);
}

TEST(Session, SamplesCoverTheWholeRun) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  SessionConfig cfg;
  cfg.sample_interval = 2.0;
  TransferSession s(env, ds, one_chunk_plan(ds, 2), cfg);
  const auto r = s.run();
  ASSERT_FALSE(r.samples.empty());
  Bytes total = 0;
  Joules energy = 0.0;
  for (const auto& sample : r.samples) {
    total += sample.bytes;
    energy += sample.end_system_energy;
    EXPECT_GE(sample.window_end, sample.window_start);
  }
  EXPECT_EQ(total, r.bytes);
  EXPECT_NEAR(energy, r.end_system_energy, r.end_system_energy * 1e-9);
  EXPECT_NEAR(r.samples.back().window_end, r.duration, cfg.tick + 1e-9);
}

namespace {
class ConcurrencyStep final : public Controller {
 public:
  explicit ConcurrencyStep(int to) : to_(to) {}
  std::optional<int> initial_concurrency() override { return 1; }
  void on_sample(TransferSession& session, const SampleStats&) override {
    session.set_total_concurrency(to_);
  }

 private:
  int to_;
};
}  // namespace

TEST(Session, ControllerCanRetargetConcurrency) {
  const auto env = small_env();
  Dataset ds;
  for (int i = 0; i < 30; ++i) ds.files.push_back({30 * kMB});
  SessionConfig cfg;
  cfg.sample_interval = 1.0;
  ConcurrencyStep ctl(4);
  TransferSession s(env, ds, one_chunk_plan(ds, 1), cfg);
  const auto r = s.run(&ctl);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.final_concurrency, 4);
  // Later samples should show more active channels than the first.
  ASSERT_GE(r.samples.size(), 2u);
  EXPECT_EQ(r.samples.front().active_channels, 1);
  bool saw_four = false;
  for (const auto& sample : r.samples) saw_four |= sample.active_channels >= 3;
  EXPECT_TRUE(saw_four);
}

TEST(Session, LargeChunkCapHoldsAndReleases) {
  const auto env = small_env();
  Dataset ds = dataset_of({60 * kMB, 60 * kMB, 60 * kMB, 60 * kMB, 60 * kMB, 60 * kMB});
  TransferPlan plan;
  plan.chunks.push_back({SizeClass::kLarge, {0, 1, 2, 3, 4, 5}, 360 * kMB});
  plan.params.push_back({1, 1, 4});
  plan.steal = StealPolicy::kAll;

  struct CapCtl final : Controller {
    void on_start(TransferSession& s) override { s.set_large_chunk_cap(1); }
    void on_sample(TransferSession&, const SampleStats& st) override {
      max_seen = std::max(max_seen, st.active_channels);
    }
    int max_seen = 0;
  } ctl;
  TransferSession s(env, ds, plan);
  const auto r = s.run(&ctl);
  EXPECT_TRUE(r.completed);
  EXPECT_LE(ctl.max_seen, 1);
}

TEST(Session, EmptyDatasetCompletesImmediately) {
  const auto env = small_env();
  Dataset ds;
  TransferSession s(env, ds, one_chunk_plan(ds, 2));
  const auto r = s.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.bytes, 0u);
}

// --- end-of-run fractional-tick guard --------------------------------------
// Ticker timestamps accumulate floating-point error (0.1 is not a binary
// fraction), so after thousands of re-arms a tick can land epsilon past the
// deadline. The run() guard plus the finish-time clamp must keep every
// reported time within max_sim_time, to the last bit.

TEST(Session, InterruptedRunEndsExactlyAtMaxSimTime) {
  const auto env = small_env();
  const auto ds = dataset_of({2000 * kMB, 2000 * kMB});  // cannot finish in time
  SessionConfig cfg;
  cfg.tick = 0.1;
  cfg.max_sim_time = 10.05;  // deliberately not a multiple of the tick
  cfg.sample_interval = 1.0;
  TransferSession s(env, ds, one_chunk_plan(ds, 2), cfg);
  const auto r = s.run();
  EXPECT_FALSE(r.completed);
  EXPECT_DOUBLE_EQ(r.duration, 10.05);
  ASSERT_FALSE(r.samples.empty());
  for (const auto& sample : r.samples) {
    EXPECT_LE(sample.window_end, cfg.max_sim_time);
  }
}

TEST(Session, CompletedRunNeverReportsPastMaxSimTime) {
  const auto env = small_env();
  const auto ds = dataset_of({20 * kMB, 20 * kMB});
  SessionConfig cfg;
  cfg.tick = 0.1;
  // Tight but sufficient deadline: the transfer completes within a tick or
  // two of the cutoff, exactly where an unclamped fractional tick would
  // report duration > max_sim_time.
  TransferSession probe(env, ds, one_chunk_plan(ds, 2), cfg);
  const double needed = probe.run().duration;
  cfg.max_sim_time = needed + cfg.tick / 2.0;
  TransferSession s(env, ds, one_chunk_plan(ds, 2), cfg);
  const auto r = s.run();
  EXPECT_TRUE(r.completed);
  EXPECT_LE(r.duration, cfg.max_sim_time);
  for (const auto& sample : r.samples) {
    EXPECT_LE(sample.window_end, cfg.max_sim_time);
  }
}

TEST(Session, LongRunTickAccumulationStaysClamped) {
  // ~1200 re-arms of a 0.1 s ticker: now() drifts well above one ulp from
  // the nominal k*0.1 grid, so an unclamped finish time would exceed the
  // deadline. Checkpoints must obey the same bound.
  const auto env = small_env();
  const auto ds = dataset_of({20ULL * kGB, 20ULL * kGB});  // ~160 s each at 1 Gbps
  SessionConfig cfg;
  cfg.tick = 0.1;
  cfg.max_sim_time = 120.0;
  cfg.checkpoint_interval = 7.3;
  TransferSession s(env, ds, one_chunk_plan(ds, 1), cfg);
  std::vector<Seconds> stamps;
  s.set_checkpoint_sink([&](const TransferCheckpoint& c) { stamps.push_back(c.taken_at); });
  const auto r = s.run();
  EXPECT_FALSE(r.completed);
  EXPECT_DOUBLE_EQ(r.duration, 120.0);
  ASSERT_FALSE(stamps.empty());
  for (const Seconds t : stamps) EXPECT_LE(t, cfg.max_sim_time);
}

TEST(Session, EnergySplitsAcrossBothEndpoints) {
  const auto env = small_env();
  const auto ds = dataset_of({100 * kMB, 100 * kMB});
  TransferSession s(env, ds, one_chunk_plan(ds, 2));
  const auto r = s.run();
  Joules src = 0.0, dst = 0.0;
  for (const auto& e : r.source_servers) src += e.joules;
  for (const auto& e : r.destination_servers) dst += e.joules;
  EXPECT_GT(src, 0.0);
  EXPECT_GT(dst, 0.0);
  EXPECT_NEAR(src + dst, r.end_system_energy, 1e-9);
}

}  // namespace
}  // namespace eadt::proto
