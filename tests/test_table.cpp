#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace eadt {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"alg", "throughput"});
  t.add_row({"GUC", "950.0"});
  t.add_row({"ProMC", "7500.2"});
  std::ostringstream os;
  t.render(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alg"), std::string::npos);
  EXPECT_NE(s.find("ProMC"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Header columns line up with the widest cell.
  EXPECT_NE(s.find("alg    throughput"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(10.0, 0), "10");
}

TEST(Table, CsvEscaping) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.render_csv(os);
  EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace eadt
