#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/stats.hpp"

namespace eadt {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(7);
  Rng c1 = parent.fork("workload");
  Rng c2 = parent.fork("workload");
  Rng c3 = parent.fork("noise");
  EXPECT_EQ(c1.next_u64(), c2.next_u64());
  Rng c4 = parent.fork("workload");
  EXPECT_NE(c3.next_u64(), c4.next_u64());
}

TEST(Rng, Uniform01Bounds) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.uniform(10.0, 20.0));
  EXPECT_NEAR(s.mean(), 15.0, 0.1);
  EXPECT_GE(s.min(), 10.0);
  EXPECT_LT(s.max(), 20.0);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(3, 7);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, LogUniformSpansDecades) {
  Rng r(13);
  int low_decade = 0, high_decade = 0;
  for (int i = 0; i < 5000; ++i) {
    const double v = r.log_uniform(1e6, 1e9);
    ASSERT_GE(v, 1e6 * 0.999);
    ASSERT_LE(v, 1e9 * 1.001);
    if (v < 1e7) ++low_decade;
    if (v > 1e8) ++high_decade;
  }
  // Each decade should hold about a third of the draws.
  EXPECT_NEAR(low_decade / 5000.0, 1.0 / 3.0, 0.05);
  EXPECT_NEAR(high_decade / 5000.0, 1.0 / 3.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(r.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, Fnv1aKnownValues) {
  // FNV-1a 64 reference: empty string hashes to the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

}  // namespace
}  // namespace eadt
