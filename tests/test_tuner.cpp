#include "core/tuner.hpp"

#include <gtest/gtest.h>

namespace eadt::core {
namespace {

// The XSEDE numbers: BDP = 50 MB (decimal), buffer = 32 MiB.
constexpr Bytes kBdp = 50'000'000ULL;
constexpr Bytes kBuf = 32 * kMB;

TEST(Tuner, PipeliningIsBdpOverAvgFileSize) {
  // ceil(50 MB / 3 MiB) = 16: small files get deep pipelining.
  EXPECT_EQ(pipelining_level(kBdp, 3 * kMB), 16);
  // Files at/above BDP need none.
  EXPECT_EQ(pipelining_level(kBdp, 50'000'000ULL), 1);
  EXPECT_EQ(pipelining_level(kBdp, 20 * kGB), 1);
}

TEST(Tuner, PipeliningClampsDegenerateInputs) {
  EXPECT_EQ(pipelining_level(kBdp, 0), kMaxPipelining);
  EXPECT_EQ(pipelining_level(kBdp, 1), kMaxPipelining);  // would be 50M
  EXPECT_EQ(pipelining_level(0, 3 * kMB), 1);
}

TEST(Tuner, ParallelismFormulaMatchesAlgorithm1) {
  // max(min(ceil(BDP/buf), ceil(avg/buf)), 1)
  // Large files on XSEDE: ceil(50MB/32MiB) = 2 streams.
  EXPECT_EQ(parallelism_level(kBdp, 20 * kGB, kBuf), 2);
  // Small files: ceil(3MiB/32MiB) = 1 -> single stream.
  EXPECT_EQ(parallelism_level(kBdp, 3 * kMB, kBuf), 1);
  // Buffer above BDP: one stream suffices even for big files.
  EXPECT_EQ(parallelism_level(kBdp, 20 * kGB, 64 * kMB), 1);
  EXPECT_EQ(parallelism_level(kBdp, 20 * kGB, 0), 1);
}

TEST(Tuner, ConcurrencyFormulaMatchesAlgorithm1) {
  // min(ceil(BDP/avg), ceil((avail+1)/2))
  // Small chunk grabs half the channel budget (rounded up)...
  EXPECT_EQ(concurrency_level(kBdp, 3 * kMB, 12), 7);  // ceil(13/2)
  // ...the Large chunk is pinned to one channel by ceil(BDP/avg) = 1.
  EXPECT_EQ(concurrency_level(kBdp, 20 * kGB, 12), 1);
  EXPECT_EQ(concurrency_level(kBdp, 20 * kGB, 100), 1);
}

TEST(Tuner, ConcurrencyWithExhaustedBudget) {
  EXPECT_EQ(concurrency_level(kBdp, 3 * kMB, 0), 1);   // ceil(1/2) = 1
  EXPECT_EQ(concurrency_level(kBdp, 3 * kMB, -1), 0);  // nothing left
}

TEST(Tuner, MinEBudgetWalkThreeChunks) {
  // Reproduce Algorithm 1's walk at maxChannel = 12 for a typical XSEDE
  // dataset: Small avg 15 MiB, Medium avg 300 MiB, Large avg 6 GiB.
  int avail = 12;
  const int small = concurrency_level(kBdp, 15 * kMB, avail);
  avail -= small;
  const int medium = concurrency_level(kBdp, 300 * kMB, avail);
  avail -= medium;
  const int large = concurrency_level(kBdp, 6 * kGB, avail);
  EXPECT_EQ(small, 4);   // min(ceil(50M/15Mi)=4, 7)
  EXPECT_EQ(medium, 1);  // min(ceil(50M/300Mi)=1, ...)
  EXPECT_EQ(large, 1);
}

TEST(Weights, LogWeightsNormalised) {
  std::vector<proto::Chunk> chunks(3);
  chunks[0] = {proto::SizeClass::kSmall, std::vector<std::uint32_t>(100), 1 * kGB};
  chunks[1] = {proto::SizeClass::kMedium, std::vector<std::uint32_t>(20), 4 * kGB};
  chunks[2] = {proto::SizeClass::kLarge, std::vector<std::uint32_t>(4), 11 * kGB};
  const auto w = chunk_weights(chunks);
  ASSERT_EQ(w.size(), 3u);
  double sum = 0.0;
  for (double v : w) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // The many-file small chunk outweighs the few-file large chunk when byte
  // totals are comparable in log space.
  EXPECT_GT(w[0], w[2] * 0.5);
}

TEST(Weights, DegenerateChunksDoNotPoisonWeights) {
  std::vector<proto::Chunk> chunks(2);
  chunks[0] = {proto::SizeClass::kSmall, {0}, 1};  // log(1) would zero it
  chunks[1] = {proto::SizeClass::kLarge, std::vector<std::uint32_t>(10), 1 * kGB};
  const auto w = chunk_weights(chunks);
  EXPECT_GT(w[0], 0.0);
  EXPECT_LT(w[0], w[1]);
}

TEST(Allocation, FloorOnlyMatchesPaperHtee) {
  std::vector<proto::Chunk> chunks(2);
  chunks[0] = {proto::SizeClass::kSmall, std::vector<std::uint32_t>(100), 2 * kGB};
  chunks[1] = {proto::SizeClass::kLarge, std::vector<std::uint32_t>(5), 8 * kGB};
  const auto alloc = allocate_channels_by_weight(chunks, 10, false);
  int total = 0;
  for (int a : alloc) total += a;
  EXPECT_LE(total, 10);  // floor() may leave remainder unassigned
}

TEST(Allocation, EnsureTotalUsesFullBudget) {
  std::vector<proto::Chunk> chunks(3);
  chunks[0] = {proto::SizeClass::kSmall, std::vector<std::uint32_t>(300), 2 * kGB};
  chunks[1] = {proto::SizeClass::kMedium, std::vector<std::uint32_t>(40), 3 * kGB};
  chunks[2] = {proto::SizeClass::kLarge, std::vector<std::uint32_t>(6), 5 * kGB};
  for (int budget : {1, 2, 5, 12, 20}) {
    const auto alloc = allocate_channels_by_weight(chunks, budget, true);
    int total = 0;
    for (int a : alloc) total += a;
    EXPECT_EQ(total, budget) << "budget " << budget;
  }
}

TEST(Allocation, ProportionalOrdering) {
  std::vector<proto::Chunk> chunks(2);
  chunks[0] = {proto::SizeClass::kSmall, std::vector<std::uint32_t>(1000), 10 * kGB};
  chunks[1] = {proto::SizeClass::kLarge, std::vector<std::uint32_t>(3), 1 * kGB};
  const auto alloc = allocate_channels_by_weight(chunks, 12, true);
  EXPECT_GT(alloc[0], alloc[1]);
}

}  // namespace
}  // namespace eadt::core
