#include "util/config.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace eadt {
namespace {

TEST(ConfigParse, SectionsAndKeys) {
  const auto cfg = Config::parse(
      "[alpha]\n"
      "x = 1\n"
      "name = hello world\n"
      "[beta]\n"
      "y=2\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_TRUE(cfg->has_section("alpha"));
  EXPECT_TRUE(cfg->has_section("beta"));
  EXPECT_FALSE(cfg->has_section("gamma"));
  EXPECT_EQ(cfg->get("alpha", "x"), "1");
  EXPECT_EQ(cfg->get("alpha", "name"), "hello world");
  EXPECT_EQ(cfg->get("beta", "y"), "2");
  EXPECT_FALSE(cfg->get("alpha", "missing").has_value());
}

TEST(ConfigParse, CommentsAndBlankLines) {
  const auto cfg = Config::parse(
      "# full line comment\n"
      "\n"
      "[s]  ; trailing comment on section\n"
      "a = 1  # trailing comment\n"
      "b = 2  ; another\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get("s", "a"), "1");
  EXPECT_EQ(cfg->get("s", "b"), "2");
}

TEST(ConfigParse, WhitespaceTrimming) {
  const auto cfg = Config::parse("[ s ]\n  key with spaces  =  value here  \n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get("s", "key with spaces"), "value here");
}

TEST(ConfigParse, LaterDuplicateWins) {
  const auto cfg = Config::parse("[s]\nk = 1\nk = 2\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->get("s", "k"), "2");
}

TEST(ConfigParse, ErrorsCarryLineNumbers) {
  std::string err;
  EXPECT_FALSE(Config::parse("[s]\nno_equals_here\n", &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);

  EXPECT_FALSE(Config::parse("key = before any section\n", &err).has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos);

  EXPECT_FALSE(Config::parse("[unterminated\n", &err).has_value());
  EXPECT_FALSE(Config::parse("[]\nx=1\n", &err).has_value());
  EXPECT_FALSE(Config::parse("[s]\n= valueless\n", &err).has_value());
}

TEST(ConfigParse, EmptyInputIsValid) {
  const auto cfg = Config::parse("");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_TRUE(cfg->sections().empty());
}

TEST(ConfigParse, EmptySectionAllowed) {
  const auto cfg = Config::parse("[empty]\n[full]\nx=1\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_TRUE(cfg->has_section("empty"));
  EXPECT_TRUE(cfg->keys("empty").empty());
}

TEST(ConfigTyped, Doubles) {
  const auto cfg = Config::parse("[s]\na = 2.5\nb = junk\nc = 3x\n");
  ASSERT_TRUE(cfg.has_value());
  EXPECT_DOUBLE_EQ(cfg->get_double("s", "a", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(cfg->get_double("s", "b", 7.0), 7.0);   // unparsable -> fallback
  EXPECT_DOUBLE_EQ(cfg->get_double("s", "c", 7.0), 7.0);   // trailing junk -> fallback
  EXPECT_DOUBLE_EQ(cfg->get_double("s", "missing", -1.0), -1.0);
}

TEST(ConfigTyped, IntsRound) {
  const auto cfg = Config::parse("[s]\na = 12\nb = 2.6\n");
  EXPECT_EQ(cfg->get_int("s", "a", 0), 12);
  EXPECT_EQ(cfg->get_int("s", "b", 0), 3);
  EXPECT_EQ(cfg->get_int("s", "zz", 9), 9);
}

TEST(ConfigTyped, Bools) {
  const auto cfg = Config::parse(
      "[s]\nt1 = true\nt2 = YES\nt3 = on\nt4 = 1\n"
      "f1 = false\nf2 = No\nf3 = off\nf4 = 0\nweird = maybe\n");
  for (const char* k : {"t1", "t2", "t3", "t4"}) {
    EXPECT_TRUE(cfg->get_bool("s", k, false)) << k;
  }
  for (const char* k : {"f1", "f2", "f3", "f4"}) {
    EXPECT_FALSE(cfg->get_bool("s", k, true)) << k;
  }
  EXPECT_TRUE(cfg->get_bool("s", "weird", true));  // fallback on nonsense
}

TEST(ConfigTyped, Sizes) {
  const auto cfg = Config::parse("[s]\na = 32MB\nb = 1.5GB\nc = 700\nbad = 3light\n");
  EXPECT_EQ(cfg->get_size("s", "a", 0), 32 * kMB);
  EXPECT_EQ(cfg->get_size("s", "b", 0), static_cast<Bytes>(1.5 * static_cast<double>(kGB)));
  EXPECT_EQ(cfg->get_size("s", "c", 0), 700u);
  EXPECT_EQ(cfg->get_size("s", "bad", 42), 42u);
  EXPECT_EQ(cfg->get_size("s", "nope", 42), 42u);
}

TEST(ConfigTyped, Lists) {
  const auto cfg = Config::parse("[s]\nl = a, b ,c,,  d  \nempty =\n");
  const auto items = cfg->get_list("s", "l");
  ASSERT_EQ(items.size(), 4u);
  EXPECT_EQ(items[0], "a");
  EXPECT_EQ(items[1], "b");
  EXPECT_EQ(items[2], "c");
  EXPECT_EQ(items[3], "d");
  EXPECT_TRUE(cfg->get_list("s", "empty").empty());
  EXPECT_TRUE(cfg->get_list("s", "missing").empty());
}

TEST(ConfigIntrospection, SectionsAndKeyLists) {
  const auto cfg = Config::parse("[b]\nx=1\n[a]\ny=2\nz=3\n");
  const auto sections = cfg->sections();
  ASSERT_EQ(sections.size(), 2u);  // sorted by map
  EXPECT_EQ(sections[0], "a");
  EXPECT_EQ(sections[1], "b");
  EXPECT_EQ(cfg->keys("a").size(), 2u);
  EXPECT_TRUE(cfg->keys("nope").empty());
}

TEST(ParseSize, SuffixZoo) {
  EXPECT_EQ(parse_size("1024"), 1024u);
  EXPECT_EQ(parse_size("4KB"), 4 * kKB);
  EXPECT_EQ(parse_size("4 kb"), 4 * kKB);
  EXPECT_EQ(parse_size("4KiB"), 4 * kKB);
  EXPECT_EQ(parse_size("2m"), 2 * kMB);
  EXPECT_EQ(parse_size("3GB"), 3 * kGB);
  EXPECT_EQ(parse_size("1TB"), 1024 * kGB);
  EXPECT_EQ(parse_size("0.5MB"), 512 * kKB);
  EXPECT_FALSE(parse_size("").has_value());
  EXPECT_FALSE(parse_size("MB").has_value());
  EXPECT_FALSE(parse_size("12XB").has_value());
  EXPECT_FALSE(parse_size("-3MB").has_value());
}

TEST(Trim, Basics) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}


// Robustness sweep: arbitrary byte soup must never crash the parser — it
// either parses or reports a lined error.
class ConfigFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ConfigFuzz, ParserNeverCrashes) {
  Rng rng(9000 + static_cast<std::uint64_t>(GetParam()));
  std::string text;
  const int len = static_cast<int>(rng.uniform_int(0, 400));
  const char alphabet[] = "ab =[]#;\n\t0129.:,-_/";
  for (int i = 0; i < len; ++i) {
    text += alphabet[rng.uniform_int(0, sizeof(alphabet) - 2)];
  }
  std::string error;
  const auto cfg = Config::parse(text, &error);
  if (!cfg) {
    EXPECT_NE(error.find("line"), std::string::npos) << text;
  } else {
    // Whatever parsed must answer lookups without incident.
    for (const auto& section : cfg->sections()) {
      for (const auto& key : cfg->keys(section)) {
        (void)cfg->get_double(section, key, 0.0);
        (void)cfg->get_size(section, key, 0);
        (void)cfg->get_list(section, key);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSoup, ConfigFuzz, ::testing::Range(0, 20));

TEST(ConfigLoad, MissingFileReportsError) {
  std::string err;
  EXPECT_FALSE(Config::load("/nonexistent/path/x.ini", &err).has_value());
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace eadt
