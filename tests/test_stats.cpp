#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace eadt {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSeries) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4, 5}, y{2, 4, 6, 8, 10};
  const auto r = pearson_correlation(x, y);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(*r, 1.0, 1e-12);
}

TEST(Pearson, PerfectAntiCorrelation) {
  std::vector<double> x{1, 2, 3}, y{3, 2, 1};
  EXPECT_NEAR(*pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputs) {
  std::vector<double> x{1, 2, 3}, flat{5, 5, 5}, short_x{1};
  EXPECT_FALSE(pearson_correlation(x, flat).has_value());
  EXPECT_FALSE(pearson_correlation(short_x, short_x).has_value());
  std::vector<double> y2{1, 2};
  EXPECT_FALSE(pearson_correlation(x, y2).has_value());
}

TEST(LinearFit, RecoversExactCoefficients) {
  // y = 3*a + 5*b + 7 (with intercept column).
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(21);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(0, 10), b = rng.uniform(0, 10);
    rows.push_back({a, b, 1.0});
    y.push_back(3.0 * a + 5.0 * b + 7.0);
  }
  const auto fit = fit_linear(rows, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit->coefficients[1], 5.0, 1e-9);
  EXPECT_NEAR(fit->coefficients[2], 7.0, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyFitHasHighR2) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  Rng rng(22);
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0, 1);
    rows.push_back({a, 1.0});
    y.push_back(10.0 * a + 2.0 + rng.normal(0.0, 0.1));
  }
  const auto fit = fit_linear(rows, y);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->coefficients[0], 10.0, 0.2);
  EXPECT_GT(fit->r_squared, 0.98);
}

TEST(LinearFit, RejectsMalformedInput) {
  std::vector<std::vector<double>> empty;
  std::vector<double> y;
  EXPECT_FALSE(fit_linear(empty, y).has_value());

  std::vector<std::vector<double>> ragged{{1.0, 2.0}, {1.0}};
  std::vector<double> y2{1.0, 2.0};
  EXPECT_FALSE(fit_linear(ragged, y2).has_value());

  // Fewer rows than features.
  std::vector<std::vector<double>> thin{{1.0, 2.0, 3.0}};
  std::vector<double> y3{1.0};
  EXPECT_FALSE(fit_linear(thin, y3).has_value());
}

TEST(LinearFit, RejectsSingularSystem) {
  // Two identical columns -> singular normal matrix.
  std::vector<std::vector<double>> rows{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  std::vector<double> y{1, 2, 3};
  EXPECT_FALSE(fit_linear(rows, y).has_value());
}

TEST(Mape, BasicAndSkipsZeros) {
  std::vector<double> pred{110, 90, 100}, act{100, 100, 0};
  const auto m = mape_percent(pred, act);
  ASSERT_TRUE(m.has_value());
  EXPECT_NEAR(*m, 10.0, 1e-12);  // third entry skipped
  std::vector<double> zeros{0, 0};
  EXPECT_FALSE(mape_percent(zeros, zeros).has_value());
}

}  // namespace
}  // namespace eadt
