// Integration tests: the paper's Section 3 claims as executable assertions,
// run on byte-scaled versions of the experiment datasets (same shape, fewer
// bytes, so the suite stays fast).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "exp/runner.hpp"
#include "power/device.hpp"

namespace eadt::exp {
namespace {

testbeds::Testbed scaled(testbeds::Testbed t, unsigned divisor) {
  // Shrink total bytes AND the band maxima so the size *mix* is preserved —
  // otherwise a lone near-20 GB file floors every algorithm's duration and
  // masks the differences the paper measures.
  t.recipe.total_bytes /= divisor;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / divisor, band.min_size * 2);
  }
  return t;
}

// Datasets are byte-scaled, so the adaptive algorithms' probe windows are
// scaled to match (5 s at paper scale ~ 1 s here); otherwise HTEE's search
// phase would dominate the shortened transfers.
proto::SessionConfig fast_cfg() {
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  return cfg;
}

struct Sweep {
  std::map<int, RunOutcome> by_level;
};

Sweep sweep(Algorithm a, const testbeds::Testbed& t, const proto::Dataset& ds,
            std::initializer_list<int> levels) {
  Sweep s;
  for (int level : levels) s.by_level.emplace(level, run_algorithm(a, t, ds, level, fast_cfg()));
  return s;
}

class XsedeFigure2 : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // 40 GB: large enough that HTEE's probe phase has the same relative cost
    // as in the paper's 160 GB runs.
    testbed_ = new testbeds::Testbed(scaled(testbeds::xsede(), 4));
    dataset_ = new proto::Dataset(testbed_->make_dataset());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete testbed_;
    dataset_ = nullptr;
    testbed_ = nullptr;
  }
  static testbeds::Testbed* testbed_;
  static proto::Dataset* dataset_;
};
testbeds::Testbed* XsedeFigure2::testbed_ = nullptr;
proto::Dataset* XsedeFigure2::dataset_ = nullptr;

TEST_F(XsedeFigure2, EveryAlgorithmMovesAllBytes) {
  for (Algorithm a : figure_algorithms()) {
    const auto out = run_algorithm(a, *testbed_, *dataset_, 8, fast_cfg());
    EXPECT_TRUE(out.result.completed) << to_string(a);
    EXPECT_EQ(out.result.bytes, dataset_->total_bytes()) << to_string(a);
  }
}

TEST_F(XsedeFigure2, ProMcHasHighestThroughputAtHighConcurrency) {
  const auto promc = run_algorithm(Algorithm::kProMc, *testbed_, *dataset_, 12, fast_cfg());
  for (Algorithm a : {Algorithm::kGuc, Algorithm::kGo, Algorithm::kSc, Algorithm::kMinE}) {
    const auto other = run_algorithm(a, *testbed_, *dataset_, 12, fast_cfg());
    EXPECT_GT(promc.throughput_mbps(), other.throughput_mbps()) << to_string(a);
  }
  // "ProMC can reach up to 7.5 Gbps" on the 10 Gbps link: at least 60 % here.
  EXPECT_GT(promc.throughput_mbps(), 6000.0);
}

TEST_F(XsedeFigure2, MinEConsumesLeastEnergyAcrossLevels) {
  // "MinE achieves lowest energy consumption almost at all concurrency
  // levels": strict at mid/high concurrency, where the contention premium
  // MinE avoids is real; near-tie tolerated at the low-concurrency corner.
  for (int level : {4, 8, 12}) {
    const auto mine = run_algorithm(Algorithm::kMinE, *testbed_, *dataset_, level, fast_cfg());
    const double slack = level <= 4 ? 1.10 : 1.0;
    for (Algorithm a : {Algorithm::kSc, Algorithm::kProMc}) {
      const auto other = run_algorithm(a, *testbed_, *dataset_, level, fast_cfg());
      EXPECT_LT(mine.energy(), other.energy() * slack)
          << to_string(a) << " at level " << level;
    }
  }
}

TEST_F(XsedeFigure2, ScYieldsMinELikeThroughputButMoreEnergy) {
  // "while MinE and SC yield close transfer throughput in all concurrency
  //  levels, SC consumes as much as 20 % more energy than MinE".
  const auto mine = run_algorithm(Algorithm::kMinE, *testbed_, *dataset_, 12, fast_cfg());
  const auto sc = run_algorithm(Algorithm::kSc, *testbed_, *dataset_, 12, fast_cfg());
  const double thr_ratio = sc.throughput_mbps() / mine.throughput_mbps();
  EXPECT_GT(thr_ratio, 0.6);
  EXPECT_LT(thr_ratio, 2.0);
  EXPECT_GT(sc.energy(), mine.energy() * 1.05);
}

TEST_F(XsedeFigure2, GoBurnsMoreEnergyThanScAtConcurrencyTwo) {
  // GO's two channels land on two DTN servers; SC packs them onto one.
  const auto go = run_algorithm(Algorithm::kGo, *testbed_, *dataset_, 2, fast_cfg());
  const auto sc = run_algorithm(Algorithm::kSc, *testbed_, *dataset_, 2, fast_cfg());
  EXPECT_GT(go.energy(), sc.energy() * 1.2);
}

TEST_F(XsedeFigure2, GucIsTheSlowBaseline) {
  const auto guc = run_algorithm(Algorithm::kGuc, *testbed_, *dataset_, 1, fast_cfg());
  const auto sc = run_algorithm(Algorithm::kSc, *testbed_, *dataset_, 1, fast_cfg());
  EXPECT_LT(guc.throughput_mbps(), sc.throughput_mbps());
}

TEST_F(XsedeFigure2, ProMcEnergyParabolaBottomsMidRange) {
  // Four-core DTNs: energy falls to concurrency ~4, then climbs (Eq. 2).
  const auto s = sweep(Algorithm::kProMc, *testbed_, *dataset_, {1, 4, 12});
  EXPECT_LT(s.by_level.at(4).energy(), s.by_level.at(1).energy());
  EXPECT_LT(s.by_level.at(4).energy(), s.by_level.at(12).energy());
}

TEST_F(XsedeFigure2, HteeTracksTheBruteForceOptimum) {
  std::map<int, double> bf;
  double best_bf = 0.0;
  for (int level : {1, 3, 5, 7, 9, 11, 13, 15, 17, 19}) {
    bf[level] = run_algorithm(Algorithm::kBf, *testbed_, *dataset_, level, fast_cfg()).ratio();
    best_bf = std::max(best_bf, bf[level]);
  }
  const auto htee = run_algorithm(Algorithm::kHtee, *testbed_, *dataset_, 12, fast_cfg());
  const auto mine = run_algorithm(Algorithm::kMinE, *testbed_, *dataset_, 12, fast_cfg());
  ASSERT_GT(best_bf, 0.0);
  // "the concurrency level chosen by HTEE can yield as much as 95 %
  //  throughput/energy efficiency compared to the best possible value": the
  //  claim is about the chosen level's efficiency (a BF run at that level).
  ASSERT_TRUE(bf.count(htee.chosen_concurrency))
      << "chosen level " << htee.chosen_concurrency << " not an odd probe";
  EXPECT_GT(bf[htee.chosen_concurrency], best_bf * 0.85);
  // The whole HTEE run, search phase included, still lands near the optimum.
  EXPECT_GT(htee.ratio(), best_bf * 0.70);
  // "MinE ... can only reach around 70 % of the best possible ratio".
  EXPECT_LT(mine.ratio(), best_bf * 0.95);
}

class DidclabFigure4 : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new testbeds::Testbed(scaled(testbeds::didclab(), 4));  // 10 GB
    dataset_ = new proto::Dataset(testbed_->make_dataset());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete testbed_;
    dataset_ = nullptr;
    testbed_ = nullptr;
  }
  static testbeds::Testbed* testbed_;
  static proto::Dataset* dataset_;
};
testbeds::Testbed* DidclabFigure4::testbed_ = nullptr;
proto::Dataset* DidclabFigure4::dataset_ = nullptr;

TEST_F(DidclabFigure4, ConcurrencyHurtsOnSingleDiskLan) {
  const auto s = sweep(Algorithm::kProMc, *testbed_, *dataset_, {1, 4, 12});
  EXPECT_GT(s.by_level.at(1).throughput_mbps(), s.by_level.at(4).throughput_mbps());
  EXPECT_GT(s.by_level.at(4).throughput_mbps(), s.by_level.at(12).throughput_mbps());
  EXPECT_LT(s.by_level.at(1).energy(), s.by_level.at(12).energy());
}

TEST_F(DidclabFigure4, BestEfficiencyAtConcurrencyOne) {
  const auto s = sweep(Algorithm::kProMc, *testbed_, *dataset_, {1, 2, 6, 12});
  const double r1 = s.by_level.at(1).ratio();
  for (int level : {2, 6, 12}) {
    EXPECT_GE(r1, s.by_level.at(level).ratio()) << "level " << level;
  }
}

TEST_F(DidclabFigure4, HteePaysASearchPenaltyOnLan) {
  // HTEE probes high concurrency levels that are all bad here, so it lands
  // close to, but below, the tuned concurrency-1 run.
  const auto htee = run_algorithm(Algorithm::kHtee, *testbed_, *dataset_, 12, fast_cfg());
  const auto best = run_algorithm(Algorithm::kProMc, *testbed_, *dataset_, 1, fast_cfg());
  EXPECT_TRUE(htee.result.completed);
  EXPECT_LE(htee.ratio(), best.ratio());
  // But it still finds a low level rather than pinning to the maximum.
  EXPECT_LE(htee.chosen_concurrency, 5);
}

class FuturegridFigure3 : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    testbed_ = new testbeds::Testbed(scaled(testbeds::futuregrid(), 4));  // 10 GB
    dataset_ = new proto::Dataset(testbed_->make_dataset());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete testbed_;
    dataset_ = nullptr;
    testbed_ = nullptr;
  }
  static testbeds::Testbed* testbed_;
  static proto::Dataset* dataset_;
};
testbeds::Testbed* FuturegridFigure3::testbed_ = nullptr;
proto::Dataset* FuturegridFigure3::dataset_ = nullptr;

TEST_F(FuturegridFigure3, TunedAlgorithmsSaturateTheGigabitLink) {
  const auto promc = run_algorithm(Algorithm::kProMc, *testbed_, *dataset_, 12, fast_cfg());
  const auto mine = run_algorithm(Algorithm::kMinE, *testbed_, *dataset_, 12, fast_cfg());
  const auto guc = run_algorithm(Algorithm::kGuc, *testbed_, *dataset_, 1, fast_cfg());
  // ProMC, MinE (and HTEE) comparable; GUC far behind.
  EXPECT_GT(promc.throughput_mbps(), 500.0);
  EXPECT_GT(mine.throughput_mbps(), promc.throughput_mbps() * 0.6);
  EXPECT_LT(guc.throughput_mbps(), promc.throughput_mbps() * 0.7);
}

TEST_F(FuturegridFigure3, EnergyDiffersEvenWhenThroughputIsClose) {
  const auto promc = run_algorithm(Algorithm::kProMc, *testbed_, *dataset_, 12, fast_cfg());
  const auto mine = run_algorithm(Algorithm::kMinE, *testbed_, *dataset_, 12, fast_cfg());
  EXPECT_LT(mine.energy(), promc.energy());
}

TEST(Figure10, EndSystemsDominateLoadDependentEnergy) {
  for (auto t : testbeds::all_testbeds()) {
    t.recipe.total_bytes /= 8;
    const auto ds = t.make_dataset();
    const auto out = run_algorithm(Algorithm::kHtee, t, ds, t.default_max_channels, fast_cfg());
    EXPECT_GT(out.result.end_system_energy, out.result.network_energy)
        << t.env.name;
  }
}

TEST(Figure10, MetroRoutersMakeFuturegridNetworkHeaviest) {
  auto per_byte = [](const testbeds::Testbed& t) {
    return power::route_transfer_energy(t.env.route, 1 * kGB, t.env.path.mtu);
  };
  const double xs = per_byte(testbeds::xsede());
  const double fg = per_byte(testbeds::futuregrid());
  const double dl = per_byte(testbeds::didclab());
  EXPECT_GT(fg, xs);
  EXPECT_GT(xs, dl);
}

}  // namespace
}  // namespace eadt::exp
