#include "exp/service.hpp"

#include <gtest/gtest.h>

namespace eadt::exp {
namespace {

testbeds::Testbed tiny_xsede() {
  auto t = testbeds::xsede();
  t.recipe.total_bytes /= 64;
  for (auto& band : t.recipe.bands) {
    band.max_size = std::max(band.max_size / 64, band.min_size * 2);
  }
  return t;
}

proto::Dataset job_dataset(Bytes file, int count) {
  proto::Dataset ds;
  for (int i = 0; i < count; ++i) ds.files.push_back({file});
  return ds;
}

proto::SessionConfig fast_cfg() {
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  return cfg;
}

TEST(Service, PolicyNames) {
  EXPECT_STREQ(to_string(JobPolicy::kDeadline), "deadline");
  EXPECT_STREQ(to_string(JobPolicy::kGreen), "green");
  EXPECT_STREQ(to_string(JobPolicy::kBalanced), "balanced");
  EXPECT_STREQ(to_string(JobPolicy::kSla), "sla");
  EXPECT_STREQ(to_string(JobPolicy::kEnergyBudget), "energy-budget");
}

TEST(Service, MeasuresReferenceRateOnce) {
  TransferService service(tiny_xsede(), 0.0, fast_cfg());
  EXPECT_GT(service.reference_rate(), gbps(1.0));
  // An explicit reference skips the measurement.
  TransferService fixed(tiny_xsede(), gbps(5.0), fast_cfg());
  EXPECT_DOUBLE_EQ(fixed.reference_rate(), gbps(5.0));
}

TEST(Service, FifoTimelineIsContiguousAndTotalsAdd) {
  TransferService service(tiny_xsede(), gbps(7.0), fast_cfg());
  std::vector<TransferJob> jobs;
  jobs.push_back({"a", job_dataset(100 * kMB, 8), JobPolicy::kDeadline, 0, 0, 8});
  jobs.push_back({"b", job_dataset(100 * kMB, 8), JobPolicy::kGreen, 0, 0, 8});
  const auto report = service.run_queue(jobs, QueueOrder::kFifo);

  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(report.jobs[0].queued_at, 0.0);
  EXPECT_DOUBLE_EQ(report.jobs[1].queued_at, report.jobs[0].finished_at);
  EXPECT_DOUBLE_EQ(report.makespan, report.jobs[1].finished_at);
  EXPECT_EQ(report.total_bytes, 2u * 8u * 100 * kMB);
  EXPECT_NEAR(report.total_energy,
              report.jobs[0].result.end_system_energy +
                  report.jobs[1].result.end_system_energy,
              1e-9);
  EXPECT_EQ(report.jobs[0].name, "a");  // FIFO keeps order
}

TEST(Service, GreenJobUsesLessEnergyThanDeadlineJob) {
  TransferService service(tiny_xsede(), gbps(7.0), fast_cfg());
  const auto t = tiny_xsede();
  const auto ds = t.make_dataset();
  std::vector<TransferJob> jobs;
  jobs.push_back({"fast", ds, JobPolicy::kDeadline, 0, 0, 12});
  jobs.push_back({"green", ds, JobPolicy::kGreen, 0, 0, 12});
  const auto report = service.run_queue(jobs);
  EXPECT_LT(report.jobs[1].result.end_system_energy,
            report.jobs[0].result.end_system_energy);
  EXPECT_GE(report.jobs[0].throughput_mbps(), report.jobs[1].throughput_mbps());
}

TEST(Service, ShortestFirstReordersByBytes) {
  TransferService service(tiny_xsede(), gbps(7.0), fast_cfg());
  std::vector<TransferJob> jobs;
  jobs.push_back({"big", job_dataset(400 * kMB, 4), JobPolicy::kDeadline, 0, 0, 8});
  jobs.push_back({"small", job_dataset(50 * kMB, 4), JobPolicy::kDeadline, 0, 0, 8});
  const auto report = service.run_queue(jobs, QueueOrder::kShortestFirst);
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].name, "small");
  EXPECT_EQ(report.jobs[1].name, "big");
}

TEST(Service, GreenFirstFrontloadsGreenJobs) {
  TransferService service(tiny_xsede(), gbps(7.0), fast_cfg());
  std::vector<TransferJob> jobs;
  jobs.push_back({"d1", job_dataset(50 * kMB, 4), JobPolicy::kDeadline, 0, 0, 8});
  jobs.push_back({"g1", job_dataset(50 * kMB, 4), JobPolicy::kGreen, 0, 0, 8});
  jobs.push_back({"d2", job_dataset(50 * kMB, 4), JobPolicy::kDeadline, 0, 0, 8});
  jobs.push_back({"g2", job_dataset(50 * kMB, 4), JobPolicy::kGreen, 0, 0, 8});
  const auto report = service.run_queue(jobs, QueueOrder::kGreenFirst);
  EXPECT_EQ(report.jobs[0].name, "g1");
  EXPECT_EQ(report.jobs[1].name, "g2");  // stable within class
  EXPECT_EQ(report.jobs[2].name, "d1");
}

TEST(Service, SlaJobIsScoredAgainstTheReference) {
  const auto t = tiny_xsede();
  TransferService service(t, 0.0, fast_cfg());
  std::vector<TransferJob> jobs;
  TransferJob sla;
  sla.name = "sla70";
  sla.dataset = t.make_dataset();
  sla.policy = JobPolicy::kSla;
  sla.sla_percent = 70.0;
  sla.max_channels = 12;
  jobs.push_back(std::move(sla));
  const auto report = service.run_queue(jobs);
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_TRUE(report.jobs[0].result.completed);
  EXPECT_TRUE(report.jobs[0].sla_met);
}

TEST(Service, EnergyBudgetJobRespectsItsCap) {
  const auto t = tiny_xsede();
  TransferService service(t, gbps(7.0), fast_cfg());
  const auto ds = t.make_dataset();

  // Establish a generous but binding cap from a deadline run.
  std::vector<TransferJob> probe;
  probe.push_back({"probe", ds, JobPolicy::kDeadline, 0, 0, 12});
  const auto probe_report = service.run_queue(probe);
  const Joules cap = probe_report.jobs[0].result.end_system_energy * 0.9;

  std::vector<TransferJob> jobs;
  TransferJob budget;
  budget.name = "capped";
  budget.dataset = ds;
  budget.policy = JobPolicy::kEnergyBudget;
  budget.energy_budget = cap;
  budget.max_channels = 12;
  jobs.push_back(std::move(budget));
  const auto report = service.run_queue(jobs);
  EXPECT_TRUE(report.jobs[0].result.completed);
  // The service dataset is tiny (a couple of sampling windows), so the
  // controller only gets one or two corrections in; 15 % covers that.
  EXPECT_LT(report.jobs[0].result.end_system_energy, cap * 1.15);
}

TEST(Service, DeterministicReports) {
  const auto t = tiny_xsede();
  std::vector<TransferJob> jobs;
  jobs.push_back({"x", t.make_dataset(), JobPolicy::kBalanced, 0, 0, 8});
  TransferService s1(t, gbps(7.0), fast_cfg());
  TransferService s2(t, gbps(7.0), fast_cfg());
  const auto r1 = s1.run_queue(jobs);
  const auto r2 = s2.run_queue(jobs);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_DOUBLE_EQ(r1.total_energy, r2.total_energy);
}

TEST(Service, AbortedJobsAreExcludedFromAggregateRates) {
  // A time-guard abort used to be folded into the report as a success, its
  // clock-limited "rate" dragging the aggregate down. It must be counted as
  // a failure and kept out of the reference-rate math.
  const auto t = tiny_xsede();
  auto cfg = fast_cfg();
  cfg.max_sim_time = 1.5;  // enough for 4 files, nowhere near enough for 64
  TransferService service(t, gbps(7.0), cfg);
  std::vector<TransferJob> jobs;
  jobs.push_back({"small", job_dataset(50 * kMB, 4), JobPolicy::kDeadline, 0, 0, 8});
  jobs.push_back({"huge", job_dataset(100 * kMB, 64), JobPolicy::kDeadline, 0, 0, 8});
  const auto report = service.run_queue(jobs);

  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_FALSE(report.jobs[0].failed);
  EXPECT_TRUE(report.jobs[1].failed);
  EXPECT_FALSE(report.jobs[1].sla_met);
  EXPECT_EQ(report.failed_jobs, 1);
  // The mean rate fraction reflects the completed job alone.
  const double expected =
      report.jobs[0].result.avg_throughput() / report.reference_rate;
  EXPECT_DOUBLE_EQ(report.mean_rate_fraction, expected);
  EXPECT_GT(report.mean_rate_fraction, 0.0);
}

}  // namespace
}  // namespace eadt::exp
