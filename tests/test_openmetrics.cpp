// OpenMetrics exposition and scrape listener (src/obs/openmetrics.*).
//
// The exposition half is pinned by a golden: a seeded registry must render to
// exactly the text a compliant scraper expects — TYPE lines, `_total` counter
// samples, cumulative histogram buckets with `le="+Inf"` == `_count`, and the
// `# EOF` terminator. Hostile metric names (label injection attempts, names
// that collide after sanitization, wrong-kind collisions) must stay distinct
// and parseable. The listener half exercises the real socket path: bind an
// ephemeral port, speak HTTP over a raw client socket, and scrape while
// writer threads hammer the registry (the TSan configuration races this).
#include "obs/openmetrics.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace eadt::obs {
namespace {

std::string render(const MetricsRegistry& registry) {
  std::ostringstream os;
  write_openmetrics(os, registry.snapshot());
  return os.str();
}

TEST(OpenMetrics, NameSanitization) {
  EXPECT_EQ(openmetrics_name("session.bytes"), "session_bytes");
  EXPECT_EQ(openmetrics_name("already_fine:ok"), "already_fine:ok");
  EXPECT_EQ(openmetrics_name("9lives"), "_9lives");
  EXPECT_EQ(openmetrics_name(""), "_");
  EXPECT_EQ(openmetrics_name("a b\tc"), "a_b_c");
}

TEST(OpenMetrics, LabelEscaping) {
  EXPECT_EQ(openmetrics_label_escape("plain"), "plain");
  EXPECT_EQ(openmetrics_label_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(openmetrics_label_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(openmetrics_label_escape("a\nb"), "a\\nb");
}

TEST(OpenMetrics, GoldenExposition) {
  MetricsRegistry registry;
  registry.counter("requests_total").add(7);
  registry.counter("session.bytes").add(42);
  registry.gauge("queue.depth").set(3.0);
  auto& h = registry.histogram("lat.us", {1.0, 5.0});
  h.observe(0.5);
  h.observe(3.0);
  h.observe(100.0);

  // Snapshot order is counters, gauges, histograms, each name-sorted. A
  // counter already named `*_total` folds the suffix into the family; every
  // name sanitization changed keeps the original in a `name` label.
  EXPECT_EQ(render(registry),
            "# TYPE requests counter\n"
            "requests_total 7\n"
            "# TYPE session_bytes counter\n"
            "session_bytes_total{name=\"session.bytes\"} 42\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth{name=\"queue.depth\"} 3\n"
            "# TYPE lat_us histogram\n"
            "lat_us_bucket{le=\"1\",name=\"lat.us\"} 1\n"
            "lat_us_bucket{le=\"5\",name=\"lat.us\"} 2\n"
            "lat_us_bucket{le=\"+Inf\",name=\"lat.us\"} 3\n"
            "lat_us_sum{name=\"lat.us\"} 103.5\n"
            "lat_us_count{name=\"lat.us\"} 3\n"
            "# EOF\n");
}

TEST(OpenMetrics, HostileNamesStayDistinctAndEscaped) {
  MetricsRegistry registry;
  // Two distinct internal names that sanitize identically must remain two
  // series: the changed one carries its original name as a label.
  registry.counter("a.b").add(1);
  registry.counter("a_b").add(2);
  // A label-injection attempt is neutralized twice over: the family name is
  // sanitized and the label value is escaped.
  registry.gauge("evil{x=\"1\"}\ny 9").set(1.0);

  const std::string text = render(registry);
  EXPECT_NE(text.find("# TYPE a_b counter\n"), std::string::npos);
  EXPECT_NE(text.find("a_b_total{name=\"a.b\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("a_b_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("evil_x__1___y_9{name=\"evil{x=\\\"1\\\"}\\ny 9\"} 1\n"),
            std::string::npos);
  // Exactly one TYPE line for the collided counter family.
  std::size_t type_lines = 0;
  for (std::size_t pos = 0; (pos = text.find("# TYPE a_b ", pos)) != std::string::npos;
       ++pos) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(OpenMetrics, CrossKindCollisionGetsKindSuffix) {
  MetricsRegistry registry;
  registry.counter("x").add(1);
  registry.gauge("x").set(2.0);
  const std::string text = render(registry);
  EXPECT_NE(text.find("# TYPE x counter\nx_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE x_gauge gauge\nx_gauge{name=\"x\"} 2\n"),
            std::string::npos);
}

TEST(OpenMetrics, HistogramBucketsAreCumulativeAndConsistent) {
  MetricsRegistry registry;
  auto& h = registry.histogram("d", {10.0, 20.0, 30.0});
  for (int i = 0; i < 25; ++i) h.observe(static_cast<double>(i * 2));  // 0..48

  const auto metrics = registry.snapshot();
  ASSERT_EQ(metrics.size(), 1u);
  const auto& m = metrics[0];
  // Per-bucket (non-cumulative) snapshot: <=10 -> 6, <=20 -> 5, <=30 -> 5,
  // overflow -> 9; the exposition must render the running sum and close with
  // +Inf == _count. Edges use the shortest-round-trip convention shared by
  // every exporter in the tree, so exact tens render as e-notation.
  const std::string text = render(registry);
  EXPECT_NE(text.find("d_bucket{le=\"1e+01\"} 6\n"), std::string::npos);
  EXPECT_NE(text.find("d_bucket{le=\"2e+01\"} 11\n"), std::string::npos);
  EXPECT_NE(text.find("d_bucket{le=\"3e+01\"} 16\n"), std::string::npos);
  EXPECT_NE(text.find("d_bucket{le=\"+Inf\"} 25\n"), std::string::npos);
  EXPECT_NE(text.find("d_count 25\n"), std::string::npos);
  // _sum matches the (fixed-point-quantized) histogram sum exactly.
  std::uint64_t total = 0;
  for (const auto b : m.buckets) total += b;
  EXPECT_EQ(total, m.count);
  EXPECT_NE(text.find("d_sum 6e+02\n"), std::string::npos);
}

TEST(OpenMetrics, EmptyRegistryIsJustTheTerminator) {
  MetricsRegistry registry;
  EXPECT_EQ(render(registry), "# EOF\n");
}

// --- scrape listener -------------------------------------------------------

/// Minimal HTTP/1.0 client: connect to 127.0.0.1:`port`, send one GET, read
/// to EOF. Returns the raw response (status line + headers + body).
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const auto split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string{} : response.substr(split + 4);
}

TEST(MetricsHttpServer, ServesMetricsHealthzAnd404) {
  MetricsRegistry registry;
  registry.counter("scrapes.seen").add(3);
  MetricsHttpServer server(0, [&registry] { return registry.snapshot(); });
  ASSERT_TRUE(server.running()) << server.error();
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find(openmetrics_content_type()), std::string::npos);
  EXPECT_EQ(body_of(metrics),
            "# TYPE scrapes_seen counter\n"
            "scrapes_seen_total{name=\"scrapes.seen\"} 3\n"
            "# EOF\n");

  const std::string healthz = http_get(server.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(healthz), "ok\n");

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);

  server.stop();
  EXPECT_EQ(server.requests(), 3u);
}

TEST(MetricsHttpServer, PortCollisionReportsErrorInsteadOfDying) {
  MetricsRegistry registry;
  const auto snap = [&registry] { return registry.snapshot(); };
  MetricsHttpServer first(0, snap);
  ASSERT_TRUE(first.running());
  MetricsHttpServer second(first.port(), snap);
  EXPECT_FALSE(second.running());
  EXPECT_EQ(second.port(), -1);
  EXPECT_FALSE(second.error().empty());
}

TEST(MetricsHttpServer, ScrapeUnderLoadReturnsCoherentExposition) {
  MetricsRegistry registry;
  auto& hist = registry.histogram("load.us", {1.0, 10.0, 100.0});
  std::atomic<bool> stop{false};
  // Writer threads mutate pre-resolved handles lock-free while scrapes
  // snapshot the registry — the contract the TSan job verifies.
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&registry, &hist, &stop, w] {
      auto& c = registry.counter("load.events." + std::to_string(w));
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        c.add(1);
        hist.observe(static_cast<double>(i++ % 128));
        registry.gauge("load.peak").set_max(static_cast<double>(i));
      }
    });
  }

  MetricsHttpServer server(0, [&registry] { return registry.snapshot(); });
  ASSERT_TRUE(server.running()) << server.error();
  for (int scrape = 0; scrape < 16; ++scrape) {
    const std::string body = body_of(http_get(server.port(), "/metrics"));
    ASSERT_FALSE(body.empty());
    // Every mid-run snapshot is a complete, terminated exposition whose
    // histogram line set is internally consistent (one snapshot, not a torn
    // mix of two).
    EXPECT_NE(body.find("# TYPE load_us histogram\n"), std::string::npos);
    EXPECT_TRUE(body.ends_with("# EOF\n"));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  server.stop();
  EXPECT_GE(server.requests(), 16u);
}

}  // namespace
}  // namespace eadt::obs
