// The observability layer's contract: metrics/trace/decision primitives are
// correct and deterministic, sessions emit the documented span hierarchy,
// attaching sinks never changes a run's physics, exports stay byte-identical
// across --jobs N, and the edge cases the subsystem exists for — mid-run
// observer churn, resumed legs, injected brownouts — are all visible in it.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <thread>
#include <tuple>

#include "baselines/baselines.hpp"
#include "core/algorithms.hpp"
#include "exp/sweep.hpp"
#include "exp/trace.hpp"
#include "obs/obs.hpp"
#include "proto/session.hpp"
#include "test_env.hpp"
#include "util/json.hpp"

namespace eadt {
namespace {

using testutil::dataset_of;
using testutil::mixed_dataset;
using testutil::small_env;

// --- util/json -------------------------------------------------------------

TEST(JsonEscape, CleanStringsPassThrough) {
  EXPECT_EQ(json_escape("plain ascii, spaces & unicode: \xc3\xa9"),
            "plain ascii, spaces & unicode: \xc3\xa9");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonEscape, WriteJsonStringQuotes) {
  std::ostringstream os;
  write_json_string(os, "say \"hi\"");
  EXPECT_EQ(os.str(), "\"say \\\"hi\\\"\"");
}

// --- metrics ---------------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());

  reg.counter("a.count").add(3);
  reg.counter("a.count").add(2);
  EXPECT_EQ(reg.counter("a.count").value(), 5u);

  reg.gauge("a.peak").set_max(2.0);
  reg.gauge("a.peak").set_max(7.0);
  reg.gauge("a.peak").set_max(4.0);  // max is sticky
  EXPECT_DOUBLE_EQ(reg.gauge("a.peak").value(), 7.0);

  auto& h = reg.histogram("a.hist", {1.0, 10.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(5.0);   // bucket 1 (<= 10)
  h.observe(50.0);  // overflow
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_NEAR(h.sum(), 55.5, 1e-2);  // 1/256 fixed-point quantization
  EXPECT_FALSE(reg.empty());
}

TEST(Metrics, SnapshotIsSortedAndJsonHasSchema) {
  obs::MetricsRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(1);
  reg.gauge("mid").set(3.5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[1].name, "z.last");
  EXPECT_EQ(snap[2].name, "mid");

  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"eadt-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"a.first\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"mid\": 3.5"), std::string::npos);
}

TEST(Metrics, ConcurrentAddsCommute) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("hits");
  auto& h = reg.histogram("obs", {10.0, 100.0});
  std::vector<std::thread> pool;
  for (int w = 0; w < 4; ++w) {
    pool.emplace_back([&, w] {
      for (int i = 0; i < 1000; ++i) {
        c.add(1);
        h.observe(static_cast<double>(w * 50));
        reg.gauge("peak").set_max(static_cast<double>(w));
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(c.value(), 4000u);
  EXPECT_EQ(h.count(), 4000u);
  EXPECT_DOUBLE_EQ(reg.gauge("peak").value(), 3.0);
}

// --- trace buffer ----------------------------------------------------------

TEST(Trace, SpansAndChromeExport) {
  obs::TraceBuffer buf;
  buf.set_thread_name(obs::kControlTid, "control");
  buf.begin(0.0, obs::kControlTid, "transfer", "session", {"bytes", 100.0});
  buf.instant(1.0, obs::kControlTid, "checkpoint", "session");
  buf.counter(2.0, "goodput_mbps", 123.5);
  buf.end(3.0, obs::kControlTid);
  EXPECT_EQ(buf.events().size(), 4u);
  EXPECT_EQ(buf.dropped(), 0u);

  std::ostringstream os;
  obs::write_chrome_trace(os, {{"task 0", &buf}});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("task 0"), std::string::npos);
  // Seconds become microseconds (3 s -> 3e6 us, shortest round-trip form).
  EXPECT_NE(json.find("\"ts\": 3e+06"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(Trace, InternDeduplicates) {
  obs::TraceBuffer buf;
  const char* a = buf.intern("HTEE probe cc=3");
  const char* b = buf.intern("HTEE probe cc=3");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "HTEE probe cc=3");
}

TEST(Trace, CapDropsNewSpansButKeepsEnds) {
  obs::TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) buf.begin(i, obs::kControlTid, "s", "c");
  EXPECT_EQ(buf.events().size(), 4u);
  EXPECT_EQ(buf.dropped(), 6u);
  buf.end(99.0, obs::kControlTid);  // End events always land
  EXPECT_EQ(buf.events().size(), 5u);

  std::ostringstream os;
  obs::write_chrome_trace(os, {{"t", &buf}});
  EXPECT_NE(os.str().find("trace-truncated"), std::string::npos);
}

// --- streaming trace writer ------------------------------------------------

void record_demo_events(obs::TraceBuffer& buf, int base) {
  buf.begin(base + 0.0, obs::kControlTid, "transfer", "session", {"bytes", 100.0});
  buf.counter(base + 1.0, "goodput_mbps", 42.0 + base);
  buf.instant(base + 1.5, obs::kControlTid, "checkpoint", "session");
  buf.end(base + 2.0, obs::kControlTid);
}

TEST(Trace, StreamingMatchesOneShotByteForByte) {
  obs::TraceBuffer oneshot;
  oneshot.set_thread_name(obs::kControlTid, "control");
  record_demo_events(oneshot, 0);
  record_demo_events(oneshot, 10);
  std::ostringstream expect;
  obs::write_chrome_trace(expect, {{"task 0", &oneshot}});

  // The same events through the incremental writer, flushed mid-stream (and
  // once with nothing new to write, which must be a no-op).
  obs::TraceBuffer streamed;
  streamed.set_thread_name(obs::kControlTid, "control");
  std::ostringstream got;
  {
    obs::StreamingTraceWriter writer(got, streamed, "task 0");
    record_demo_events(streamed, 0);
    writer.flush();
    writer.flush();
    record_demo_events(streamed, 10);
  }  // destructor finishes the envelope
  EXPECT_EQ(got.str(), expect.str());
}

TEST(Trace, DrainEmptiesTheBufferAndResetsTheCapacityCheck) {
  obs::TraceBuffer buf(4);
  for (int i = 0; i < 4; ++i) buf.instant(i, obs::kControlTid, "e", "c");
  std::vector<obs::TraceEvent> out;
  buf.drain(out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_TRUE(buf.events().empty());
  // Room again: the cap bounds what accumulates between drains, not a run.
  buf.instant(9.0, obs::kControlTid, "later", "c");
  EXPECT_EQ(buf.events().size(), 1u);
  EXPECT_EQ(buf.dropped(), 0u);
  // drain appends, keeping what was already collected.
  buf.drain(out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(Trace, RegularFlushingRecordsPastTheBufferCap) {
  obs::TraceBuffer buf(8);
  std::ostringstream os;
  obs::StreamingTraceWriter writer(os, buf, "long run");
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 6; ++i) {
      buf.instant(round * 10.0 + i, obs::kControlTid, "tick", "c");
    }
    writer.flush();
  }
  writer.finish();
  const std::string json = os.str();
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_EQ(json.find("trace-truncated"), std::string::npos);
  // All 60 events (far past the cap of 8) made it out.
  std::size_t ticks = 0;
  for (std::size_t at = json.find("\"tick\""); at != std::string::npos;
       at = json.find("\"tick\"", at + 1)) {
    ++ticks;
  }
  EXPECT_EQ(ticks, 60u);
}

TEST(Trace, OverflowBetweenFlushesYieldsTheTruncationMarker) {
  obs::TraceBuffer buf(2);
  std::ostringstream os;
  obs::StreamingTraceWriter writer(os, buf, "bursty");
  for (int i = 0; i < 5; ++i) buf.instant(i, obs::kControlTid, "burst", "c");
  writer.finish();
  EXPECT_EQ(buf.dropped(), 3u);
  EXPECT_NE(os.str().find("trace-truncated"), std::string::npos);
  EXPECT_NE(os.str().find("\"dropped\": 3"), std::string::npos);
}

TEST(Trace, FinishIsIdempotentAndLateFlushesAreIgnored) {
  obs::TraceBuffer buf;
  std::ostringstream os;
  obs::StreamingTraceWriter writer(os, buf, "t");
  buf.instant(1.0, obs::kControlTid, "only", "c");
  writer.finish();
  const std::string closed = os.str();
  buf.instant(2.0, obs::kControlTid, "late", "c");
  writer.flush();   // after finish: must not corrupt the closed document
  writer.finish();  // idempotent
  EXPECT_EQ(os.str(), closed);
  EXPECT_NE(closed.find("\"only\""), std::string::npos);
  EXPECT_EQ(closed.find("\"late\""), std::string::npos);
}

// --- decision log ----------------------------------------------------------

TEST(Decisions, JsonAndNarrative) {
  obs::DecisionLog log;
  obs::Decision d;
  d.at = 5.0;
  d.kind = obs::DecisionKind::kHteeProbe;
  d.actor = "HTEE";
  d.subject = "probe cc=3";
  d.detail = "ratio \"best\" so far";  // quote must be escaped in JSON
  d.level = 3;
  d.ratio = 1.5e6;
  log.record(d);

  std::ostringstream json;
  log.write_json(json);
  EXPECT_NE(json.str().find("\"schema\": \"eadt-decisions-v1\""), std::string::npos);
  EXPECT_NE(json.str().find("\"kind\": \"htee-probe\""), std::string::npos);
  EXPECT_NE(json.str().find("\\\"best\\\""), std::string::npos);

  std::ostringstream text;
  log.write_narrative(text);
  EXPECT_NE(text.str().find("HTEE"), std::string::npos);
  EXPECT_NE(text.str().find("probe cc=3"), std::string::npos);
}

// --- session emission ------------------------------------------------------

TEST(SessionObs, EmitsSpansMetricsAndLeavesPhysicsUntouched) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = baselines::plan_promc(env, ds, 3);

  proto::TransferSession plain(env, ds, plan);
  const auto r_plain = plain.run();

  obs::MetricsRegistry metrics;
  obs::TraceBuffer trace;
  obs::DecisionLog decisions;
  obs::ObsSinks sinks{&metrics, &trace, &decisions};
  proto::SessionConfig cfg;
  cfg.obs = &sinks;
  proto::TransferSession session(env, ds, plan, cfg);
  const auto r = session.run();

  // Observation must not perturb the run.
  EXPECT_DOUBLE_EQ(r.duration, r_plain.duration);
  EXPECT_DOUBLE_EQ(r.end_system_energy, r_plain.end_system_energy);
  EXPECT_EQ(r.bytes, r_plain.bytes);

  // Metrics: ticks counted, bytes attributed, run histograms filled.
  EXPECT_EQ(metrics.counter("session.runs").value(), 1u);
  EXPECT_GT(metrics.counter("session.ticks").value(), 0u);
  EXPECT_EQ(metrics.counter("session.goodput_bytes").value(), r.goodput_bytes());
  EXPECT_EQ(metrics.histogram("session.run_duration_s", {}).count(), 1u);
  // Per-chunk byte counters exist and together account for the goodput.
  std::uint64_t chunk_bytes = 0;
  for (const auto& m : metrics.snapshot()) {
    if (m.name.rfind("session.chunk_bytes.", 0) == 0) chunk_bytes += m.count;
  }
  EXPECT_EQ(chunk_bytes, r.goodput_bytes());

  // Trace: one transfer span, at least one lease span, chunk activity, and a
  // completion instant — all the layers of the documented hierarchy.
  const auto has_event = [&](obs::TraceEvent::Phase ph, const std::string& name) {
    return std::any_of(trace.events().begin(), trace.events().end(),
                       [&](const obs::TraceEvent& e) {
                         return e.phase == ph && e.name != nullptr && name == e.name;
                       });
  };
  EXPECT_TRUE(has_event(obs::TraceEvent::Phase::kBegin, "transfer"));
  EXPECT_TRUE(has_event(obs::TraceEvent::Phase::kBegin, "chunk-active"));
  EXPECT_TRUE(has_event(obs::TraceEvent::Phase::kInstant, "run-complete"));
  const bool has_lease =
      std::any_of(trace.events().begin(), trace.events().end(), [](const auto& e) {
        return e.phase == obs::TraceEvent::Phase::kBegin && e.name != nullptr &&
               std::string_view(e.name).substr(0, 6) == "lease ";
      });
  EXPECT_TRUE(has_lease);

  // Every Begin is balanced by an End (the exporter closes nothing itself).
  int open = 0;
  for (const auto& e : trace.events()) {
    if (e.phase == obs::TraceEvent::Phase::kBegin) ++open;
    if (e.phase == obs::TraceEvent::Phase::kEnd) --open;
  }
  EXPECT_EQ(open, 0);
}

TEST(SessionObs, HteeDecisionLogNamesEachProbedLevelWithItsRatio) {
  const auto env = small_env();
  // Big enough for several 5 s probe windows at ~1 Gbps.
  proto::Dataset ds;
  for (int i = 0; i < 16; ++i) ds.files.push_back({200 * kMB});

  obs::MetricsRegistry metrics;
  obs::TraceBuffer trace;
  obs::DecisionLog decisions;
  obs::ObsSinks sinks{&metrics, &trace, &decisions};
  proto::SessionConfig cfg;
  cfg.obs = &sinks;

  const int max_channels = 8;
  core::HteeController controller(max_channels);
  proto::TransferSession session(
      env, ds, core::plan_htee(env, ds, max_channels, &decisions), cfg);
  const auto result = session.run(&controller);
  EXPECT_TRUE(result.completed);

  // Every probed level appears as a decision carrying its measured
  // throughput-per-joule ratio — the acceptance criterion of the issue.
  std::vector<int> probed;
  for (const auto& d : decisions.decisions()) {
    if (d.kind != obs::DecisionKind::kHteeProbe) continue;
    probed.push_back(d.level);
    EXPECT_STREQ(d.actor, "HTEE");
    EXPECT_GT(d.ratio, 0.0) << "probe cc=" << d.level;
    EXPECT_GT(d.measured_mbps, 0.0) << "probe cc=" << d.level;
    EXPECT_NE(d.subject.find("cc=" + std::to_string(d.level)), std::string::npos);
  }
  ASSERT_GE(probed.size(), 2u);
  for (std::size_t i = 0; i < probed.size(); ++i) {
    EXPECT_EQ(probed[i], 1 + 2 * static_cast<int>(i));  // 1, 3, 5, ... stride 2
  }
  EXPECT_EQ(metrics.counter("algo.htee.probes").value(), probed.size());

  // Each probe is also a span on the control track.
  const bool probe_span =
      std::any_of(trace.events().begin(), trace.events().end(), [](const auto& e) {
        return e.phase == obs::TraceEvent::Phase::kBegin && e.name != nullptr &&
               std::string_view(e.name).substr(0, 10) == "HTEE probe";
      });
  EXPECT_TRUE(probe_span);
}

TEST(SessionObs, MinEPlanDecisionsExplainPartitionAndChannelWalk) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  obs::DecisionLog log;
  const auto plan = core::plan_min_energy(env, ds, 6, &log);
  ASSERT_FALSE(plan.chunks.empty());
  ASSERT_FALSE(log.empty());
  // The tuner explains each chunk's pipelining/parallelism pick first; the
  // partition record then summarizes the chunking those picks belong to.
  const auto count = [&](obs::DecisionKind kind) {
    return std::count_if(log.decisions().begin(), log.decisions().end(),
                         [&](const auto& d) { return d.kind == kind; });
  };
  EXPECT_EQ(log.decisions().front().kind, obs::DecisionKind::kPlanTune);
  EXPECT_EQ(count(obs::DecisionKind::kPlanTune),
            static_cast<std::ptrdiff_t>(plan.chunks.size()));
  EXPECT_EQ(count(obs::DecisionKind::kPlanPartition), 1);
  EXPECT_GE(count(obs::DecisionKind::kPlanChannelWalk), 1);
}

// --- observer edge cases ---------------------------------------------------

/// Detaches itself after `detach_after` ticks and hands observation to
/// `successor` — both directions of mid-run observer churn in one run.
struct SelfDetachingObserver final : proto::SessionObserver {
  proto::TransferSession* session = nullptr;
  proto::SessionObserver* successor = nullptr;
  int detach_after = 5;
  int seen = 0;

  void on_tick(const proto::TickTrace&) override {
    if (++seen == detach_after) session->set_observer(successor);
  }
};

TEST(SessionObs, AttachAndDetachMidRunDoesNotPerturbTheRun) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = baselines::plan_promc(env, ds, 3);

  proto::TransferSession plain(env, ds, plan);
  const auto r_plain = plain.run();

  exp::TickRecorder tail(1);
  SelfDetachingObserver head;
  proto::TransferSession session(env, ds, plan);
  head.session = &session;
  head.successor = &tail;
  session.set_observer(&head);
  const auto r = session.run();

  EXPECT_DOUBLE_EQ(r.duration, r_plain.duration);
  EXPECT_DOUBLE_EQ(r.end_system_energy, r_plain.end_system_energy);
  EXPECT_EQ(head.seen, head.detach_after);  // stopped seeing ticks after detach
  EXPECT_GT(tail.traces().size(), 0u);      // successor picked up mid-run
  // The hand-off is seamless: the successor's first tick follows the head's
  // last (strictly later sim-time).
  EXPECT_GT(tail.traces().front().time, 0.0);
}

TEST(SessionObs, ResumedLegUsesAbsoluteSimTime) {
  const auto env = small_env();
  proto::Dataset ds;
  for (int i = 0; i < 8; ++i) ds.files.push_back({100 * kMB});
  const auto plan = baselines::plan_promc(env, ds, 2);

  // Leg 1: interrupt at 3 s.
  proto::SessionConfig first_cfg;
  first_cfg.max_sim_time = 3.0;
  proto::TransferSession first(env, ds, plan, first_cfg);
  const auto r1 = first.run();
  ASSERT_FALSE(r1.completed);
  ASSERT_TRUE(r1.checkpoint.has_value());
  const Seconds taken_at = r1.checkpoint->taken_at;
  ASSERT_GT(taken_at, 0.0);

  // Leg 2: resume with both an observer and obs sinks attached.
  obs::MetricsRegistry metrics;
  obs::TraceBuffer trace;
  obs::ObsSinks sinks{&metrics, &trace, nullptr};
  proto::SessionConfig cfg;
  cfg.obs = &sinks;
  exp::TickRecorder recorder(1);
  proto::TransferSession second(env, ds, plan, cfg);
  std::string err;
  ASSERT_TRUE(second.resume_from(*r1.checkpoint, &err)) << err;
  second.set_observer(&recorder);
  const auto r2 = second.run();
  EXPECT_TRUE(r2.completed);

  // TickTrace.time continues the transfer clock, it does not restart at 0.
  ASSERT_FALSE(recorder.traces().empty());
  EXPECT_GT(recorder.traces().front().time, taken_at);

  // Every span in the resumed leg sits at absolute transfer time too: the
  // earliest event (the transfer span open) is at the resume point, not 0.
  ASSERT_FALSE(trace.events().empty());
  double min_t = trace.events().front().t;
  for (const auto& e : trace.events()) min_t = std::min(min_t, e.t);
  EXPECT_GE(min_t, taken_at);
  EXPECT_DOUBLE_EQ(trace.events().front().t, taken_at);
}

TEST(SessionObs, BrownoutAndDownChannelsReachTheTrace) {
  const auto env = small_env();
  proto::Dataset ds;
  for (int i = 0; i < 8; ++i) ds.files.push_back({100 * kMB});
  const auto plan = baselines::plan_promc(env, ds, 4);

  proto::FaultPlan faults;
  faults.brownouts.push_back({1.0, 2.0, 0.4});
  faults.channel_drops.push_back({1.5, 0});

  obs::MetricsRegistry metrics;
  obs::TraceBuffer trace;
  obs::ObsSinks sinks{&metrics, &trace, nullptr};
  proto::SessionConfig cfg;
  cfg.obs = &sinks;
  cfg.sample_interval = 0.5;  // fine-grained counter track
  exp::TickRecorder recorder(1);
  proto::TransferSession session(env, ds, plan, cfg);
  session.set_fault_plan(faults);
  session.set_observer(&recorder);
  const auto result = session.run();
  EXPECT_TRUE(result.completed);

  // The observer saw the brownout in TickTrace...
  const bool factor_seen =
      std::any_of(recorder.traces().begin(), recorder.traces().end(),
                  [](const auto& t) { return t.path_capacity_factor == 0.4; });
  const bool down_seen = std::any_of(recorder.traces().begin(), recorder.traces().end(),
                                     [](const auto& t) { return t.down_channels > 0; });
  EXPECT_TRUE(factor_seen);
  EXPECT_TRUE(down_seen);

  // ...and both facts reached the span trace: brownout instants plus the
  // path_capacity_factor and down_channels counter tracks.
  const auto counter_with = [&](const char* name, auto pred) {
    return std::any_of(trace.events().begin(), trace.events().end(), [&](const auto& e) {
      return e.phase == obs::TraceEvent::Phase::kCounter && e.name != nullptr &&
             std::string_view(e.name) == name && pred(e.args[0].value);
    });
  };
  const auto has_instant = [&](const char* name) {
    return std::any_of(trace.events().begin(), trace.events().end(), [&](const auto& e) {
      return e.phase == obs::TraceEvent::Phase::kInstant && e.name != nullptr &&
             std::string_view(e.name) == name;
    });
  };
  EXPECT_TRUE(has_instant("brownout"));
  EXPECT_TRUE(has_instant("brownout-clear"));
  EXPECT_TRUE(has_instant("channel-drop"));
  EXPECT_TRUE(counter_with("path_capacity_factor", [](double v) { return v == 0.4; }));
  EXPECT_TRUE(counter_with("down_channels", [](double v) { return v > 0.0; }));
  EXPECT_GE(metrics.counter("session.path_brownouts").value(), 1u);
}

// --- sweep determinism -----------------------------------------------------

TEST(SweepObs, ExportsAreByteIdenticalAcrossJobCounts) {
  auto testbed = testbeds::xsede();
  testbed.recipe.total_bytes /= 64;
  const auto dataset = testbed.make_dataset();

  const auto run_with = [&](int jobs) {
    auto collector = std::make_unique<obs::ObsCollector>();
    std::vector<exp::SweepTask> tasks;
    for (const auto a : {exp::Algorithm::kSc, exp::Algorithm::kMinE,
                         exp::Algorithm::kHtee, exp::Algorithm::kProMc}) {
      for (const int cc : {2, 6}) {
        exp::SweepTask task;
        task.testbed = testbed;
        task.dataset = dataset;
        task.algorithm = a;
        task.concurrency = cc;
        task.config.sample_interval = 1.0;
        task.obs = collector.get();
        tasks.push_back(std::move(task));
      }
    }
    const auto results = exp::SweepRunner(jobs).run(tasks);
    std::ostringstream trace, metrics, decisions;
    collector->write_chrome_trace(trace);
    collector->write_metrics_json(metrics);
    collector->write_decisions_json(decisions);
    return std::tuple{exp::sweep_payload(results), trace.str(), metrics.str(),
                      decisions.str()};
  };

  const auto seq = run_with(1);
  const auto par = run_with(4);
  EXPECT_EQ(std::get<0>(par), std::get<0>(seq));
  EXPECT_EQ(std::get<1>(par), std::get<1>(seq)) << "chrome trace differs";
  EXPECT_EQ(std::get<2>(par), std::get<2>(seq)) << "metrics json differs";
  EXPECT_EQ(std::get<3>(par), std::get<3>(seq)) << "decisions json differs";
  // And the exports are substantive, not vacuously equal.
  EXPECT_NE(std::get<1>(seq).find("\"transfer\""), std::string::npos);
  EXPECT_NE(std::get<2>(seq).find("session.runs"), std::string::npos);
  EXPECT_NE(std::get<3>(seq).find("plan-partition"), std::string::npos);
}

// --- bench record ----------------------------------------------------------

TEST(BenchJson, MetricsSectionOnlyWhenPresentAndNamesAreEscaped) {
  exp::BenchRecord record;
  record.name = "obs \"quoted\"\nname";  // hostile name must stay valid JSON
  record.commit = "test";

  std::ostringstream without;
  exp::write_bench_json(without, record);
  EXPECT_EQ(without.str().find("\"metrics\""), std::string::npos);
  EXPECT_NE(without.str().find("obs \\\"quoted\\\"\\nname"), std::string::npos);

  obs::MetricsRegistry reg;
  reg.counter("session.runs").add(2);
  record.metrics = reg.snapshot();
  std::ostringstream with;
  exp::write_bench_json(with, record);
  EXPECT_NE(with.str().find("\"metrics\""), std::string::npos);
  EXPECT_NE(with.str().find("\"session.runs\": 2"), std::string::npos);
}

}  // namespace
}  // namespace eadt
