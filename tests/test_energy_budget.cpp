#include "core/energy_budget.hpp"

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "exp/runner.hpp"
#include "test_env.hpp"

namespace eadt::core {
namespace {

using testutil::small_env;

proto::Dataset budget_dataset() {
  proto::Dataset ds;
  for (int i = 0; i < 80; ++i) ds.files.push_back({24 * kMB});
  return ds;
}

struct BudgetRun {
  proto::RunResult result;
  int final_level = 0;
};

BudgetRun run_with_budget(Joules budget, int max_channels = 8) {
  const auto env = small_env();
  const auto ds = budget_dataset();
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  EnergyBudgetController ctl(budget, max_channels);
  proto::TransferSession s(env, ds, baselines::plan_promc(env, ds, max_channels), cfg);
  BudgetRun out{s.run(&ctl), ctl.final_level()};
  return out;
}

/// The envelope: the cheapest possible schedule (cc = 1) and the fastest
/// (cc = 8), to position budgets meaningfully.
struct Envelope {
  Joules frugal_energy;
  Joules fast_energy;
  Seconds frugal_time;
  Seconds fast_time;
};

Envelope envelope() {
  const auto env = small_env();
  const auto ds = budget_dataset();
  proto::TransferSession s1(env, ds, baselines::plan_promc(env, ds, 1));
  proto::TransferSession s8(env, ds, baselines::plan_promc(env, ds, 8));
  const auto r1 = s1.run();
  const auto r8 = s8.run();
  return {r1.end_system_energy, r8.end_system_energy, r1.duration, r8.duration};
}

TEST(EnergyBudget, AlwaysCompletesEvenWhenInfeasible) {
  // A budget far below even the cheapest schedule: the controller settles at
  // the minimum-energy-per-byte level (it may probe one step around it) and
  // still finishes.
  const auto run = run_with_budget(1.0);
  EXPECT_TRUE(run.result.completed);
  EXPECT_LE(run.final_level, 3);
}

TEST(EnergyBudget, GenerousBudgetRunsFast) {
  const auto env_pts = envelope();
  const auto run = run_with_budget(env_pts.fast_energy * 3.0);
  EXPECT_TRUE(run.result.completed);
  EXPECT_GT(run.final_level, 4);
  // Near the unconstrained-fast duration.
  EXPECT_LT(run.result.duration, env_pts.fast_time * 1.5);
}

TEST(EnergyBudget, FeasibleBudgetIsRespected) {
  const auto env_pts = envelope();
  // A budget between the frugal and the fast cost.
  const Joules budget =
      env_pts.frugal_energy + 0.5 * (env_pts.fast_energy - env_pts.frugal_energy);
  const auto run = run_with_budget(budget);
  EXPECT_TRUE(run.result.completed);
  // Within 10 % of the cap (projection error + quantised levels).
  EXPECT_LT(run.result.end_system_energy, budget * 1.10);
}

TEST(EnergyBudget, MoreBudgetBuysSpeed) {
  // NOTE: a tighter budget does not necessarily mean *less* energy — at low
  // concurrency the energy-vs-cc curve can be duration-dominated (the GUC
  // effect). The controller's guarantee is about the cap, not the minimum:
  // each run respects its own budget, and more budget is never slower.
  const auto env_pts = envelope();
  const Joules lo = env_pts.frugal_energy * 1.05;
  const Joules hi = env_pts.fast_energy * 2.0;
  const auto slow = run_with_budget(lo);
  const auto fast = run_with_budget(hi);
  EXPECT_TRUE(slow.result.completed);
  EXPECT_TRUE(fast.result.completed);
  EXPECT_LE(fast.result.duration, slow.result.duration * 1.05);
  EXPECT_LE(slow.result.end_system_energy, lo * 1.10);
}

TEST(EnergyBudget, ControllerExposesAccounting) {
  const auto env = small_env();
  const auto ds = budget_dataset();
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  EnergyBudgetController ctl(1e9, 4);
  proto::TransferSession s(env, ds, baselines::plan_promc(env, ds, 4), cfg);
  const auto r = s.run(&ctl);
  // All but the final partial window's energy is visible to the controller.
  EXPECT_GT(ctl.spent(), r.end_system_energy * 0.5);
  EXPECT_LE(ctl.spent(), r.end_system_energy * 1.0 + 1e-9);
  EXPECT_GT(ctl.projected_total(), 0.0);
}

}  // namespace
}  // namespace eadt::core
