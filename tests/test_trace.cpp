#include "exp/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/baselines.hpp"
#include "proto/session.hpp"
#include "test_env.hpp"

namespace eadt::exp {
namespace {

using testutil::mixed_dataset;
using testutil::small_env;

TEST(TickRecorder, SeesEveryTickAndKeepsTimeMonotone) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  TickRecorder recorder(1);
  proto::TransferSession session(env, ds, baselines::plan_promc(env, ds, 3));
  session.set_observer(&recorder);
  const auto r = session.run();
  ASSERT_TRUE(r.completed);

  ASSERT_FALSE(recorder.traces().empty());
  // One trace per 100 ms tick over the run's duration.
  EXPECT_NEAR(static_cast<double>(recorder.ticks_seen()), r.duration / 0.1, 2.0);
  Seconds prev = -1.0;
  for (const auto& t : recorder.traces()) {
    EXPECT_GT(t.time, prev);
    prev = t.time;
    EXPECT_GE(t.end_system_power, 0.0);
    EXPECT_GE(t.open_channels, 0);
  }
}

TEST(TickRecorder, GoodputIntegratesToTheBytesMoved) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  TickRecorder recorder(1);
  proto::TransferSession session(env, ds, baselines::plan_promc(env, ds, 3));
  session.set_observer(&recorder);
  const auto r = session.run();
  double bits = 0.0;
  for (const auto& t : recorder.traces()) bits += t.goodput * 0.1;
  EXPECT_NEAR(bits, to_bits(r.bytes), to_bits(r.bytes) * 0.01);
}

TEST(TickRecorder, PowerIntegratesToTheEnergy) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  TickRecorder recorder(1);
  proto::TransferSession session(env, ds, baselines::plan_promc(env, ds, 3));
  session.set_observer(&recorder);
  const auto r = session.run();
  Joules joules = 0.0;
  for (const auto& t : recorder.traces()) joules += t.end_system_power * 0.1;
  EXPECT_NEAR(joules, r.end_system_energy, r.end_system_energy * 0.01);
}

TEST(TickRecorder, StrideSubsamples) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  TickRecorder all(1), tenth(10);
  {
    proto::TransferSession s(env, ds, baselines::plan_promc(env, ds, 3));
    s.set_observer(&all);
    (void)s.run();
  }
  {
    proto::TransferSession s(env, ds, baselines::plan_promc(env, ds, 3));
    s.set_observer(&tenth);
    (void)s.run();
  }
  EXPECT_EQ(all.ticks_seen(), tenth.ticks_seen());
  EXPECT_NEAR(static_cast<double>(all.traces().size()) / 10.0,
              static_cast<double>(tenth.traces().size()), 1.0);
}

TEST(TickRecorder, CsvShape) {
  const auto env = small_env();
  const auto ds = testutil::dataset_of({20 * kMB, 20 * kMB});
  TickRecorder recorder(1);
  proto::TransferSession session(env, ds, baselines::plan_promc(env, ds, 2));
  session.set_observer(&recorder);
  (void)session.run();
  std::ostringstream os;
  recorder.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_s,goodput_mbps,power_w,open_channels,busy_channels"),
            std::string::npos);
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(TickRecorder, ObserverDoesNotPerturbTheRun) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  proto::TransferSession plain(env, ds, baselines::plan_promc(env, ds, 3));
  const auto r_plain = plain.run();

  TickRecorder recorder(1);
  proto::TransferSession observed(env, ds, baselines::plan_promc(env, ds, 3));
  observed.set_observer(&recorder);
  const auto r_obs = observed.run();

  EXPECT_DOUBLE_EQ(r_plain.duration, r_obs.duration);
  EXPECT_DOUBLE_EQ(r_plain.end_system_energy, r_obs.end_system_energy);
}

}  // namespace
}  // namespace eadt::exp
