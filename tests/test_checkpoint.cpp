// Checkpoint/resume journal: capture, serialization, and resumed-leg
// semantics. The golden contract: interrupt-at-T then resume lands exactly
// the unique bytes an uninterrupted run lands.
#include <gtest/gtest.h>

#include <sstream>

#include "proto/checkpoint.hpp"
#include "proto/faults.hpp"
#include "proto/session.hpp"
#include "test_env.hpp"

namespace eadt::proto {
namespace {

using testutil::dataset_of;
using testutil::mixed_dataset;
using testutil::small_env;

TransferPlan one_chunk_plan(const Dataset& ds, int channels, int parallelism = 2) {
  TransferPlan plan;
  Chunk chunk{SizeClass::kLarge, {}, 0};
  for (std::uint32_t i = 0; i < ds.files.size(); ++i) {
    chunk.file_ids.push_back(i);
    chunk.total += ds.files[i].size;
  }
  plan.chunks = {chunk};
  plan.params = {{1, parallelism, channels}};
  return plan;
}

/// Run to completion with no interruption.
RunResult baseline_run(const Environment& env, const Dataset& ds,
                       const TransferPlan& plan, const FaultPlan& faults = {}) {
  TransferSession s(env, ds, plan, {});
  s.set_fault_plan(faults);
  return s.run();
}

/// Run with the watchdog set to `deadline`, returning the aborted result.
RunResult interrupted_run(const Environment& env, const Dataset& ds,
                          const TransferPlan& plan, Seconds deadline,
                          const FaultPlan& faults = {}) {
  SessionConfig cfg;
  cfg.max_sim_time = deadline;
  TransferSession s(env, ds, plan, cfg);
  s.set_fault_plan(faults);
  return s.run();
}

/// Resume from `ckpt` and run the residual transfer to completion.
RunResult resumed_run(const Environment& env, const Dataset& ds,
                      const TransferPlan& plan, const TransferCheckpoint& ckpt,
                      const FaultPlan& faults = {}) {
  TransferSession s(env, ds, plan, {});
  s.set_fault_plan(faults);
  std::string err;
  EXPECT_TRUE(s.resume_from(ckpt, &err)) << err;
  return s.run();
}

TEST(Checkpoint, AbortedRunCarriesItsJournalEntry) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = one_chunk_plan(ds, 3);
  const auto aborted = interrupted_run(env, ds, plan, 2.0);

  ASSERT_FALSE(aborted.completed);
  ASSERT_TRUE(aborted.checkpoint.has_value());
  const auto& c = *aborted.checkpoint;
  EXPECT_DOUBLE_EQ(c.taken_at, 2.0);
  EXPECT_EQ(c.dataset_fingerprint, dataset_fingerprint(ds));
  EXPECT_EQ(c.wire_bytes, aborted.bytes);
  EXPECT_GT(c.delivered_bytes(ds), 0u);
  EXPECT_LT(c.delivered_bytes(ds), ds.total_bytes());
  // Landed + in-flight progress accounts for every wire byte (no faults, so
  // nothing was ever re-sent).
  EXPECT_EQ(c.delivered_bytes(ds), aborted.bytes);
}

TEST(Checkpoint, CompletedRunHasNoCheckpoint) {
  const auto env = small_env();
  const auto ds = dataset_of({10 * kMB, 10 * kMB});
  const auto res = baseline_run(env, ds, one_chunk_plan(ds, 2));
  ASSERT_TRUE(res.completed);
  EXPECT_FALSE(res.checkpoint.has_value());
  EXPECT_TRUE(res.error.empty());
}

TEST(Checkpoint, InterruptThenResumeLandsTheSameUniqueBytes) {
  // The acceptance pin: a run interrupted at T and resumed from its journal
  // delivers byte-identical unique goodput to the uninterrupted run.
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = one_chunk_plan(ds, 3);

  const auto whole = baseline_run(env, ds, plan);
  ASSERT_TRUE(whole.completed);
  ASSERT_EQ(whole.goodput_bytes(), ds.total_bytes());

  const auto aborted = interrupted_run(env, ds, plan, 2.0);
  ASSERT_FALSE(aborted.completed);
  const auto resumed = resumed_run(env, ds, plan, *aborted.checkpoint);

  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.goodput_bytes(), whole.goodput_bytes());
  EXPECT_EQ(resumed.bytes, whole.bytes);  // fault-free: wire == unique
  // The resumed leg reports absolute transfer time: it continues the clock
  // from the checkpoint instead of restarting at zero.
  EXPECT_GE(resumed.duration, aborted.duration);
  EXPECT_NEAR(resumed.duration, whole.duration, whole.duration * 0.10);
  for (const auto& s : resumed.samples) EXPECT_GE(s.window_start, 2.0 - 1e-9);
}

TEST(Checkpoint, ResumeNeverRePaysLandedBytes) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = one_chunk_plan(ds, 3);
  const auto aborted = interrupted_run(env, ds, plan, 2.0);
  ASSERT_FALSE(aborted.completed);

  const Bytes landed = aborted.checkpoint->delivered_bytes(ds);
  const auto resumed = resumed_run(env, ds, plan, *aborted.checkpoint);
  ASSERT_TRUE(resumed.completed);
  // The resumed leg's own wire traffic is exactly the unlanded remainder.
  EXPECT_EQ(resumed.bytes - aborted.bytes, ds.total_bytes() - landed);
}

TEST(Checkpoint, ResumeUnderFaultsIsDeterministicAndComplete) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = one_chunk_plan(ds, 3);
  FaultPlan faults;
  faults.stochastic.channel_drop_rate = 0.4;
  faults.stochastic.checksum_failure_prob = 0.02;
  faults.seed = 99;

  const auto aborted = interrupted_run(env, ds, plan, 3.0, faults);
  ASSERT_FALSE(aborted.completed);
  const auto a = resumed_run(env, ds, plan, *aborted.checkpoint, faults);
  const auto b = resumed_run(env, ds, plan, *aborted.checkpoint, faults);

  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.goodput_bytes(), ds.total_bytes());
  // Same journal, same seed: the continuation is bit-reproducible.
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.end_system_energy, b.end_system_energy);
  EXPECT_EQ(a.faults.channel_drops, b.faults.channel_drops);
  EXPECT_EQ(a.faults.wasted_bytes, b.faults.wasted_bytes);
}

TEST(Checkpoint, ResumeUnderADegradedPlanStillDeliversEverything) {
  // The journal is plan-agnostic: the supervisor may resume with fewer
  // channels (or another algorithm's chunking) over the residual dataset.
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto aborted = interrupted_run(env, ds, one_chunk_plan(ds, 4), 2.0);
  ASSERT_FALSE(aborted.completed);

  const auto resumed = resumed_run(env, ds, one_chunk_plan(ds, 1, 1), *aborted.checkpoint);
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.goodput_bytes(), ds.total_bytes());
}

TEST(Checkpoint, SerializationRoundTripIsBitExact) {
  const auto env = small_env(2);
  const auto ds = mixed_dataset();
  auto plan = one_chunk_plan(ds, 3);
  plan.placement = Placement::kRoundRobin;
  FaultPlan faults;
  faults.stochastic.channel_drop_rate = 0.6;
  faults.retry.restart_markers = false;
  faults.seed = 7;
  const auto aborted = interrupted_run(env, ds, plan, 3.0, faults);
  ASSERT_TRUE(aborted.checkpoint.has_value());
  const auto& c = *aborted.checkpoint;

  std::stringstream journal;
  write_checkpoint(journal, c);
  std::string err;
  const auto parsed = read_checkpoint(journal, &err);
  ASSERT_TRUE(parsed.has_value()) << err;

  EXPECT_EQ(parsed->taken_at, c.taken_at);  // hex-floats: exact, not near
  EXPECT_EQ(parsed->dataset_fingerprint, c.dataset_fingerprint);
  EXPECT_EQ(parsed->wire_bytes, c.wire_bytes);
  EXPECT_EQ(parsed->end_system_energy, c.end_system_energy);
  EXPECT_EQ(parsed->network_energy, c.network_energy);
  EXPECT_EQ(parsed->faults.retries, c.faults.retries);
  EXPECT_EQ(parsed->faults.wasted_bytes, c.faults.wasted_bytes);
  EXPECT_EQ(parsed->faults.wasted_joules, c.faults.wasted_joules);
  EXPECT_EQ(parsed->faults.channel_downtime, c.faults.channel_downtime);
  EXPECT_EQ(parsed->quarantined_channels, c.quarantined_channels);
  EXPECT_EQ(parsed->completed, c.completed);
  ASSERT_EQ(parsed->partial.size(), c.partial.size());
  for (std::size_t i = 0; i < c.partial.size(); ++i) {
    EXPECT_EQ(parsed->partial[i].file_id, c.partial[i].file_id);
    EXPECT_EQ(parsed->partial[i].delivered, c.partial[i].delivered);
  }
  EXPECT_EQ(parsed->channel_chunks, c.channel_chunks);
  ASSERT_EQ(parsed->source_servers.size(), c.source_servers.size());
  for (std::size_t i = 0; i < c.source_servers.size(); ++i) {
    EXPECT_EQ(parsed->source_servers[i].name, c.source_servers[i].name);
    EXPECT_EQ(parsed->source_servers[i].joules, c.source_servers[i].joules);
    EXPECT_EQ(parsed->source_servers[i].active_time, c.source_servers[i].active_time);
  }
  EXPECT_EQ(parsed->jitter_rng, c.jitter_rng);
  EXPECT_EQ(parsed->victim_rng, c.victim_rng);
  EXPECT_EQ(parsed->backoff_rng, c.backoff_rng);
  EXPECT_EQ(parsed->checksum_rng, c.checksum_rng);

  // A parsed journal resumes exactly like the in-memory checkpoint.
  const auto via_memory = resumed_run(env, ds, plan, c, faults);
  const auto via_journal = resumed_run(env, ds, plan, *parsed, faults);
  EXPECT_EQ(via_memory.duration, via_journal.duration);
  EXPECT_EQ(via_memory.bytes, via_journal.bytes);
  EXPECT_EQ(via_memory.end_system_energy, via_journal.end_system_energy);
}

TEST(Checkpoint, ReaderRejectsMalformedInput) {
  std::string err;
  {
    std::istringstream empty("");
    EXPECT_FALSE(read_checkpoint(empty, &err).has_value());
    EXPECT_FALSE(err.empty());
  }
  {
    std::istringstream wrong("eadt-checkpoint 999\n");
    EXPECT_FALSE(read_checkpoint(wrong, &err).has_value());
    EXPECT_NE(err.find("version"), std::string::npos) << err;
  }
  {
    std::istringstream garbage("not a journal at all\n");
    EXPECT_FALSE(read_checkpoint(garbage, &err).has_value());
  }
}

TEST(Checkpoint, ResumeRefusesAForeignDataset) {
  const auto env = small_env();
  const auto ds = dataset_of({40 * kMB, 40 * kMB, 40 * kMB});
  const auto aborted = interrupted_run(env, ds, one_chunk_plan(ds, 2), 0.5);
  ASSERT_TRUE(aborted.checkpoint.has_value());

  const auto other = dataset_of({40 * kMB, 40 * kMB, 41 * kMB});
  TransferSession s(env, other, one_chunk_plan(other, 2), {});
  std::string err;
  EXPECT_FALSE(s.resume_from(*aborted.checkpoint, &err));
  EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
}

TEST(Checkpoint, FingerprintIsOrderAndSizeSensitive) {
  const auto a = dataset_of({1 * kMB, 2 * kMB});
  const auto b = dataset_of({2 * kMB, 1 * kMB});
  const auto c = dataset_of({1 * kMB, 2 * kMB, 0});
  EXPECT_NE(dataset_fingerprint(a), dataset_fingerprint(b));
  EXPECT_NE(dataset_fingerprint(a), dataset_fingerprint(c));
  EXPECT_EQ(dataset_fingerprint(a), dataset_fingerprint(dataset_of({1 * kMB, 2 * kMB})));
}

TEST(Checkpoint, PeriodicSinkEmitsMonotoneJournalEntries) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  SessionConfig cfg;
  cfg.checkpoint_interval = 1.0;
  TransferSession s(env, ds, one_chunk_plan(ds, 3), cfg);
  std::vector<TransferCheckpoint> entries;
  s.set_checkpoint_sink([&](const TransferCheckpoint& c) { entries.push_back(c); });
  const auto res = s.run();

  ASSERT_TRUE(res.completed);
  ASSERT_GE(entries.size(), 3u);
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GT(entries[i].taken_at, entries[i - 1].taken_at);
    EXPECT_GE(entries[i].delivered_bytes(ds), entries[i - 1].delivered_bytes(ds));
    EXPECT_GE(entries[i].wire_bytes, entries[i - 1].wire_bytes);
  }
}

}  // namespace
}  // namespace eadt::proto
