#include "core/algorithms.hpp"

#include <gtest/gtest.h>

#include "test_env.hpp"

namespace eadt::core {
namespace {

using testutil::mixed_dataset;
using testutil::small_env;

TEST(TunedChunkPlan, PartitionsAndTunesPerChunk) {
  const auto env = small_env();  // BDP = 1 Gbps * 20 ms = 2.5 MB
  const auto ds = mixed_dataset();
  const auto plan = tuned_chunk_plan(env, ds);
  ASSERT_FALSE(plan.chunks.empty());
  ASSERT_EQ(plan.chunks.size(), plan.params.size());
  // Chunks ordered Small -> Large with ascending average file size.
  for (std::size_t i = 1; i < plan.chunks.size(); ++i) {
    EXPECT_LT(plan.chunks[i - 1].avg_file_size(), plan.chunks[i].avg_file_size());
  }
  // Small chunks pipeline deeper than large ones.
  EXPECT_GE(plan.params.front().pipelining, plan.params.back().pipelining);
  for (const auto& p : plan.params) {
    EXPECT_GE(p.pipelining, 1);
    EXPECT_GE(p.parallelism, 1);
  }
}

TEST(MinE, ChannelWalkMatchesAlgorithm1) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = plan_min_energy(env, ds, 12);
  ASSERT_GE(plan.chunks.size(), 2u);
  // The Large chunk gets exactly one channel.
  for (std::size_t i = 0; i < plan.chunks.size(); ++i) {
    if (plan.chunks[i].cls == proto::SizeClass::kLarge) {
      EXPECT_EQ(plan.params[i].channels, 1);
    }
  }
  // The Small chunk takes the biggest share.
  EXPECT_GE(plan.params.front().channels, plan.params.back().channels);
  EXPECT_LE(plan.total_channels(), 12);
  EXPECT_EQ(plan.steal, proto::StealPolicy::kNonLargeOnly);
  EXPECT_EQ(plan.placement, proto::Placement::kPacked);
  EXPECT_FALSE(plan.sequential_chunks);
}

TEST(MinE, RespectsTinyBudgets) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  for (int budget : {1, 2, 3}) {
    const auto plan = plan_min_energy(env, ds, budget);
    EXPECT_LE(plan.total_channels(), budget + 1);  // ceil((x+1)/2) walk
    EXPECT_GE(plan.total_channels(), 1);
  }
}

TEST(Htee, PlanUsesFloorAllocation) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = plan_htee(env, ds, 10);
  EXPECT_LE(plan.total_channels(), 10);
  EXPECT_EQ(plan.steal, proto::StealPolicy::kAll);
}

TEST(HteeController, SearchVisitsOddLevelsAndPicksBest) {
  const auto env = small_env();
  proto::Dataset ds;
  for (int i = 0; i < 120; ++i) ds.files.push_back({12 * kMB});
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;  // fast probes for the test
  HteeController ctl(7);
  proto::TransferSession s(env, ds, plan_htee(env, ds, 7), cfg);
  const auto r = s.run(&ctl);
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(ctl.search_finished());
  // Chosen level is one of the probed odd levels.
  const int chosen = ctl.chosen_level();
  EXPECT_TRUE(chosen == 1 || chosen == 3 || chosen == 5 || chosen == 7) << chosen;
  EXPECT_EQ(r.final_concurrency, chosen);
}

TEST(HteeController, SingleLevelSearchTerminates) {
  const auto env = small_env();
  proto::Dataset ds;
  for (int i = 0; i < 20; ++i) ds.files.push_back({10 * kMB});
  proto::SessionConfig cfg;
  cfg.sample_interval = 0.5;
  HteeController ctl(1);
  proto::TransferSession s(env, ds, plan_htee(env, ds, 1), cfg);
  const auto r = s.run(&ctl);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(ctl.chosen_level(), 1);
}

TEST(Slaee, PlanPrioritisesSmallChunks) {
  const auto env = small_env();
  const auto ds = mixed_dataset();
  const auto plan = plan_slaee(env, ds, 8);
  EXPECT_EQ(plan.total_channels(), 8);
  EXPECT_EQ(plan.placement, proto::Placement::kPacked);
}

TEST(SlaeeController, HoldsWhenTargetIsMet) {
  const auto env = small_env();
  proto::Dataset ds;
  for (int i = 0; i < 40; ++i) ds.files.push_back({20 * kMB});
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  // Target far below what concurrency 1 delivers: level should stay at 1.
  SlaeeController ctl(mbps(10.0), 8);
  proto::TransferSession s(env, ds, plan_slaee(env, ds, 8), cfg);
  const auto r = s.run(&ctl);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(ctl.final_level(), 1);
  EXPECT_FALSE(ctl.rearranged());
}

TEST(SlaeeController, JumpsTowardDemandingTargets) {
  const auto env = small_env();
  proto::Dataset ds;
  for (int i = 0; i < 60; ++i) ds.files.push_back({25 * kMB});
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  SlaeeController ctl(mbps(700.0), 8);
  proto::TransferSession s(env, ds, plan_slaee(env, ds, 8), cfg);
  const auto r = s.run(&ctl);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(ctl.final_level(), 1);
}

TEST(SlaeeController, UnreachableTargetMaxesOutAndRearranges) {
  const auto env = small_env();
  proto::Dataset ds;
  for (int i = 0; i < 80; ++i) ds.files.push_back({25 * kMB});
  proto::SessionConfig cfg;
  cfg.sample_interval = 1.0;
  // 5 Gbps on a 1 Gbps link: impossible; SLAEE must reach maxChannel and
  // trigger reArrangeChannels rather than loop forever.
  SlaeeController ctl(gbps(5.0), 6);
  proto::TransferSession s(env, ds, plan_slaee(env, ds, 6), cfg);
  const auto r = s.run(&ctl);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(ctl.final_level(), 6);
  EXPECT_TRUE(ctl.rearranged());
}

}  // namespace
}  // namespace eadt::core
