#include "power/device.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace eadt::power {
namespace {

TEST(DeviceCurves, LinearShape) {
  LinearDevicePower m(100.0, 50.0);
  EXPECT_DOUBLE_EQ(m.power(0.0), 100.0);
  EXPECT_DOUBLE_EQ(m.power(0.5), 125.0);
  EXPECT_DOUBLE_EQ(m.power(1.0), 150.0);
  EXPECT_DOUBLE_EQ(m.power(2.0), 150.0);  // clamps
  EXPECT_DOUBLE_EQ(m.idle(), 100.0);
  EXPECT_DOUBLE_EQ(m.dynamic_power(0.5), 25.0);
}

TEST(DeviceCurves, NonLinearIsSubLinear) {
  NonLinearDevicePower m(100.0, 50.0);
  // sqrt shape: at 25 % load the device already draws 50 % of max dynamic.
  EXPECT_DOUBLE_EQ(m.power(0.25), 125.0);
  EXPECT_DOUBLE_EQ(m.power(1.0), 150.0);
  // Dynamic power grows slower than rate: p(4x)/p(x) == 2 for x, 4x <= 1.
  EXPECT_NEAR(m.dynamic_power(0.8) / m.dynamic_power(0.2), 2.0, 1e-9);
}

TEST(DeviceCurves, StateBasedSteps) {
  StateBasedDevicePower m(80.0, {{0.75, 30.0}, {0.25, 10.0}, {0.5, 20.0}});
  EXPECT_DOUBLE_EQ(m.power(0.0), 80.0);
  EXPECT_DOUBLE_EQ(m.power(0.10), 80.0);
  EXPECT_DOUBLE_EQ(m.power(0.30), 90.0);
  EXPECT_DOUBLE_EQ(m.power(0.60), 100.0);
  EXPECT_DOUBLE_EQ(m.power(0.90), 110.0);
}

// Section 4's analytic argument, as executable properties.
TEST(Section4, LinearModelMakesEnergyRateInvariant) {
  LinearDevicePower m(100.0, 60.0);
  const Bytes data = 10 * kGB;
  const Joules slow = device_transfer_energy(m, data, gbps(1.0), gbps(10.0));
  const Joules fast = device_transfer_energy(m, data, gbps(4.0), gbps(10.0));
  EXPECT_NEAR(slow, fast, slow * 1e-9);
}

TEST(Section4, SubLinearModelRewardsFasterTransfers) {
  NonLinearDevicePower m(100.0, 60.0);
  const Bytes data = 10 * kGB;
  const Joules slow = device_transfer_energy(m, data, gbps(1.0), gbps(10.0));
  const Joules fast = device_transfer_energy(m, data, gbps(4.0), gbps(10.0));
  // Quadrupling the rate halves the energy (sqrt relation).
  EXPECT_NEAR(fast, slow / 2.0, slow * 1e-9);
}

TEST(Section4, IdleInclusionAlwaysFavoursFaster) {
  LinearDevicePower m(100.0, 60.0);
  const Bytes data = 10 * kGB;
  const Joules slow = device_transfer_energy(m, data, gbps(1.0), gbps(10.0), true);
  const Joules fast = device_transfer_energy(m, data, gbps(4.0), gbps(10.0), true);
  EXPECT_GT(slow, fast);  // idle watts accrue for the whole duration
}

TEST(Section4, DegenerateTransfers) {
  LinearDevicePower m(100.0, 60.0);
  EXPECT_DOUBLE_EQ(device_transfer_energy(m, 0, gbps(1.0), gbps(10.0)), 0.0);
  EXPECT_DOUBLE_EQ(device_transfer_energy(m, 1 * kGB, 0.0, gbps(10.0)), 0.0);
}

TEST(Table1, CoefficientsMatchPaper) {
  const auto ent = per_packet_coefficients(net::DeviceKind::kEnterpriseSwitch);
  EXPECT_DOUBLE_EQ(ent.pp_nj, 40.0);
  EXPECT_DOUBLE_EQ(ent.psf_pj_per_byte, 0.42);
  const auto edge = per_packet_coefficients(net::DeviceKind::kEdgeSwitch);
  EXPECT_DOUBLE_EQ(edge.pp_nj, 1571.0);
  EXPECT_DOUBLE_EQ(edge.psf_pj_per_byte, 14.1);
  const auto metro = per_packet_coefficients(net::DeviceKind::kMetroRouter);
  EXPECT_DOUBLE_EQ(metro.pp_nj, 1375.0);
  EXPECT_DOUBLE_EQ(metro.psf_pj_per_byte, 21.6);
  const auto er = per_packet_coefficients(net::DeviceKind::kEdgeRouter);
  EXPECT_DOUBLE_EQ(er.pp_nj, 1707.0);
  EXPECT_DOUBLE_EQ(er.psf_pj_per_byte, 15.3);
}

TEST(Table1, MetroRoutersAreTheExpensiveHops) {
  const Bytes mtu = 1500;
  const Joules metro = per_packet_energy(net::DeviceKind::kMetroRouter, mtu);
  const Joules ent = per_packet_energy(net::DeviceKind::kEnterpriseSwitch, mtu);
  EXPECT_GT(metro, ent * 10.0);
}

TEST(RouteEnergy, ScalesWithBytesAndDeviceChain) {
  const auto xsede = net::xsede_route();
  const auto didclab = net::didclab_route();
  const Joules e1 = route_transfer_energy(xsede, 1 * kGB, 1500);
  const Joules e2 = route_transfer_energy(xsede, 2 * kGB, 1500);
  EXPECT_NEAR(e2, 2.0 * e1, e1 * 0.01);
  // A LAN with one switch costs far less than the six-device WAN chain.
  EXPECT_LT(route_transfer_energy(didclab, 1 * kGB, 1500), e1 / 2.0);
  EXPECT_DOUBLE_EQ(route_transfer_energy(xsede, 0, 1500), 0.0);
  EXPECT_DOUBLE_EQ(route_transfer_energy(xsede, 1 * kGB, 0), 0.0);
}

TEST(RouteEnergy, FuturegridPerByteCostExceedsXsede) {
  // Per Figure 10: the metro-router path makes FutureGrid's *network* energy
  // per byte the highest of the three testbeds.
  const Joules fg = route_transfer_energy(net::futuregrid_route(), 1 * kGB, 1500);
  const Joules xs = route_transfer_energy(net::xsede_route(), 1 * kGB, 1500);
  EXPECT_GT(fg, 0.0);
  EXPECT_GT(xs, 0.0);
  // FutureGrid: 2 edge switches + 3 metro routers vs XSEDE's chain.
  EXPECT_LT(std::abs(fg / xs - (2 * 1571.0 + 3 * 1375.0 + /*psf*/ 0.0) /
                                  (2 * 40.0 + 2 * 1571.0 + 2 * 1707.0)),
            0.2);
}


TEST(RouteEnergy, ByKindBreakdownSumsToTotal) {
  const auto route = net::xsede_route();
  const Bytes bytes = 10 * kGB;
  const auto parts = route_transfer_energy_by_kind(route, bytes, 1500);
  ASSERT_EQ(parts.size(), 3u);  // edge-switch, enterprise-switch, edge-router
  Joules sum = 0.0;
  for (const auto& p : parts) sum += p.joules;
  EXPECT_NEAR(sum, route_transfer_energy(route, bytes, 1500), 1e-6);
}

TEST(RouteEnergy, ByKindAggregatesDuplicates) {
  const auto parts =
      route_transfer_energy_by_kind(net::futuregrid_route(), 1 * kGB, 1500);
  ASSERT_EQ(parts.size(), 2u);
  for (const auto& p : parts) {
    if (p.kind == net::DeviceKind::kMetroRouter) {
      // Three metro routers fold into one entry worth 3x a single hop.
      const double single =
          std::ceil(static_cast<double>(1 * kGB) / 1500.0) *
          per_packet_energy(net::DeviceKind::kMetroRouter, 1500);
      EXPECT_NEAR(p.joules, 3.0 * single, single * 1e-9);
    }
  }
}

TEST(RouteEnergy, ByKindEmptyInputs) {
  EXPECT_TRUE(route_transfer_energy_by_kind(net::Route{}, 1 * kGB, 1500).empty());
  EXPECT_TRUE(route_transfer_energy_by_kind(net::xsede_route(), 0, 1500).empty());
}

}  // namespace
}  // namespace eadt::power
