file(REMOVE_RECURSE
  "../bench/robustness_jitter"
  "../bench/robustness_jitter.pdb"
  "CMakeFiles/robustness_jitter.dir/robustness_jitter.cpp.o"
  "CMakeFiles/robustness_jitter.dir/robustness_jitter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
