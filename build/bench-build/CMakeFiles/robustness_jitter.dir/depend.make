# Empty dependencies file for robustness_jitter.
# This may be replaced when dependencies are built.
