# Empty compiler generated dependencies file for fig7_sla_didclab.
# This may be replaced when dependencies are built.
