file(REMOVE_RECURSE
  "../bench/fig7_sla_didclab"
  "../bench/fig7_sla_didclab.pdb"
  "CMakeFiles/fig7_sla_didclab.dir/fig7_sla_didclab.cpp.o"
  "CMakeFiles/fig7_sla_didclab.dir/fig7_sla_didclab.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_sla_didclab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
