# Empty dependencies file for eadt_benchlib.
# This may be replaced when dependencies are built.
