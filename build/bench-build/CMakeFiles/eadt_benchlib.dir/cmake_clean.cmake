file(REMOVE_RECURSE
  "CMakeFiles/eadt_benchlib.dir/bench_common.cpp.o"
  "CMakeFiles/eadt_benchlib.dir/bench_common.cpp.o.d"
  "libeadt_benchlib.a"
  "libeadt_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
