file(REMOVE_RECURSE
  "libeadt_benchlib.a"
)
