file(REMOVE_RECURSE
  "../bench/crossover_map"
  "../bench/crossover_map.pdb"
  "CMakeFiles/crossover_map.dir/crossover_map.cpp.o"
  "CMakeFiles/crossover_map.dir/crossover_map.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossover_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
