# Empty dependencies file for crossover_map.
# This may be replaced when dependencies are built.
