file(REMOVE_RECURSE
  "../bench/fig5_sla_xsede"
  "../bench/fig5_sla_xsede.pdb"
  "CMakeFiles/fig5_sla_xsede.dir/fig5_sla_xsede.cpp.o"
  "CMakeFiles/fig5_sla_xsede.dir/fig5_sla_xsede.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sla_xsede.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
