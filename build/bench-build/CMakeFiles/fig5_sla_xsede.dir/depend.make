# Empty dependencies file for fig5_sla_xsede.
# This may be replaced when dependencies are built.
