file(REMOVE_RECURSE
  "../bench/fig3_futuregrid"
  "../bench/fig3_futuregrid.pdb"
  "CMakeFiles/fig3_futuregrid.dir/fig3_futuregrid.cpp.o"
  "CMakeFiles/fig3_futuregrid.dir/fig3_futuregrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_futuregrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
