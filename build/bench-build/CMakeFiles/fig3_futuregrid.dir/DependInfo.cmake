
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig3_futuregrid.cpp" "bench-build/CMakeFiles/fig3_futuregrid.dir/fig3_futuregrid.cpp.o" "gcc" "bench-build/CMakeFiles/fig3_futuregrid.dir/fig3_futuregrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/eadt_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/eadt_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/eadt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eadt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/testbeds/CMakeFiles/eadt_testbeds.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/eadt_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eadt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eadt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eadt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/eadt_host.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eadt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
