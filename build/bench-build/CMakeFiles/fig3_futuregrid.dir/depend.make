# Empty dependencies file for fig3_futuregrid.
# This may be replaced when dependencies are built.
