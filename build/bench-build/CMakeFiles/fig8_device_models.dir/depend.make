# Empty dependencies file for fig8_device_models.
# This may be replaced when dependencies are built.
