file(REMOVE_RECURSE
  "../bench/fig8_device_models"
  "../bench/fig8_device_models.pdb"
  "CMakeFiles/fig8_device_models.dir/fig8_device_models.cpp.o"
  "CMakeFiles/fig8_device_models.dir/fig8_device_models.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_device_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
