file(REMOVE_RECURSE
  "../bench/validation_tcp_model"
  "../bench/validation_tcp_model.pdb"
  "CMakeFiles/validation_tcp_model.dir/validation_tcp_model.cpp.o"
  "CMakeFiles/validation_tcp_model.dir/validation_tcp_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_tcp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
