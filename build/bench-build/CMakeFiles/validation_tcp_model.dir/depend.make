# Empty dependencies file for validation_tcp_model.
# This may be replaced when dependencies are built.
