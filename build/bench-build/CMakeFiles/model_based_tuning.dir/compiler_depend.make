# Empty compiler generated dependencies file for model_based_tuning.
# This may be replaced when dependencies are built.
