file(REMOVE_RECURSE
  "../bench/model_based_tuning"
  "../bench/model_based_tuning.pdb"
  "CMakeFiles/model_based_tuning.dir/model_based_tuning.cpp.o"
  "CMakeFiles/model_based_tuning.dir/model_based_tuning.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_based_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
