# Empty dependencies file for fig4_didclab.
# This may be replaced when dependencies are built.
