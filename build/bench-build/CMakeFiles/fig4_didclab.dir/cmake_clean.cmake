file(REMOVE_RECURSE
  "../bench/fig4_didclab"
  "../bench/fig4_didclab.pdb"
  "CMakeFiles/fig4_didclab.dir/fig4_didclab.cpp.o"
  "CMakeFiles/fig4_didclab.dir/fig4_didclab.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_didclab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
