file(REMOVE_RECURSE
  "../bench/fig6_sla_futuregrid"
  "../bench/fig6_sla_futuregrid.pdb"
  "CMakeFiles/fig6_sla_futuregrid.dir/fig6_sla_futuregrid.cpp.o"
  "CMakeFiles/fig6_sla_futuregrid.dir/fig6_sla_futuregrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sla_futuregrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
