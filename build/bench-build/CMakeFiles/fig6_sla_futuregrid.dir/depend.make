# Empty dependencies file for fig6_sla_futuregrid.
# This may be replaced when dependencies are built.
