# Empty dependencies file for fig10_end_vs_network.
# This may be replaced when dependencies are built.
