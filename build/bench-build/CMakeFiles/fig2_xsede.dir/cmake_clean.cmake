file(REMOVE_RECURSE
  "../bench/fig2_xsede"
  "../bench/fig2_xsede.pdb"
  "CMakeFiles/fig2_xsede.dir/fig2_xsede.cpp.o"
  "CMakeFiles/fig2_xsede.dir/fig2_xsede.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_xsede.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
