# Empty dependencies file for fig2_xsede.
# This may be replaced when dependencies are built.
