file(REMOVE_RECURSE
  "../bench/table1_device_energy"
  "../bench/table1_device_energy.pdb"
  "CMakeFiles/table1_device_energy.dir/table1_device_energy.cpp.o"
  "CMakeFiles/table1_device_energy.dir/table1_device_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_device_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
