# Empty dependencies file for table1_device_energy.
# This may be replaced when dependencies are built.
