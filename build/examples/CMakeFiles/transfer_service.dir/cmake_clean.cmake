file(REMOVE_RECURSE
  "CMakeFiles/transfer_service.dir/transfer_service.cpp.o"
  "CMakeFiles/transfer_service.dir/transfer_service.cpp.o.d"
  "transfer_service"
  "transfer_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
