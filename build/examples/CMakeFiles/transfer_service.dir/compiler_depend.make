# Empty compiler generated dependencies file for transfer_service.
# This may be replaced when dependencies are built.
