file(REMOVE_RECURSE
  "CMakeFiles/sla_datamover.dir/sla_datamover.cpp.o"
  "CMakeFiles/sla_datamover.dir/sla_datamover.cpp.o.d"
  "sla_datamover"
  "sla_datamover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sla_datamover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
