# Empty compiler generated dependencies file for sla_datamover.
# This may be replaced when dependencies are built.
