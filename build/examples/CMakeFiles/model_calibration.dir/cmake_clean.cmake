file(REMOVE_RECURSE
  "CMakeFiles/model_calibration.dir/model_calibration.cpp.o"
  "CMakeFiles/model_calibration.dir/model_calibration.cpp.o.d"
  "model_calibration"
  "model_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
