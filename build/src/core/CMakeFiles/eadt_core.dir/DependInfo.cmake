
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithms.cpp" "src/core/CMakeFiles/eadt_core.dir/algorithms.cpp.o" "gcc" "src/core/CMakeFiles/eadt_core.dir/algorithms.cpp.o.d"
  "/root/repo/src/core/energy_budget.cpp" "src/core/CMakeFiles/eadt_core.dir/energy_budget.cpp.o" "gcc" "src/core/CMakeFiles/eadt_core.dir/energy_budget.cpp.o.d"
  "/root/repo/src/core/model_based.cpp" "src/core/CMakeFiles/eadt_core.dir/model_based.cpp.o" "gcc" "src/core/CMakeFiles/eadt_core.dir/model_based.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/eadt_core.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/eadt_core.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/eadt_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eadt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eadt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eadt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/eadt_host.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eadt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
