# Empty compiler generated dependencies file for eadt_core.
# This may be replaced when dependencies are built.
