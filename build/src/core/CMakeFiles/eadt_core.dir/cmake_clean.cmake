file(REMOVE_RECURSE
  "CMakeFiles/eadt_core.dir/algorithms.cpp.o"
  "CMakeFiles/eadt_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/eadt_core.dir/energy_budget.cpp.o"
  "CMakeFiles/eadt_core.dir/energy_budget.cpp.o.d"
  "CMakeFiles/eadt_core.dir/model_based.cpp.o"
  "CMakeFiles/eadt_core.dir/model_based.cpp.o.d"
  "CMakeFiles/eadt_core.dir/tuner.cpp.o"
  "CMakeFiles/eadt_core.dir/tuner.cpp.o.d"
  "libeadt_core.a"
  "libeadt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
