file(REMOVE_RECURSE
  "libeadt_core.a"
)
