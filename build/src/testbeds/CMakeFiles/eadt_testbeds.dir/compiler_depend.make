# Empty compiler generated dependencies file for eadt_testbeds.
# This may be replaced when dependencies are built.
