file(REMOVE_RECURSE
  "libeadt_testbeds.a"
)
