file(REMOVE_RECURSE
  "CMakeFiles/eadt_testbeds.dir/config_testbed.cpp.o"
  "CMakeFiles/eadt_testbeds.dir/config_testbed.cpp.o.d"
  "CMakeFiles/eadt_testbeds.dir/testbeds.cpp.o"
  "CMakeFiles/eadt_testbeds.dir/testbeds.cpp.o.d"
  "libeadt_testbeds.a"
  "libeadt_testbeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_testbeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
