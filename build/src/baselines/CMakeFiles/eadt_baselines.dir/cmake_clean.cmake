file(REMOVE_RECURSE
  "CMakeFiles/eadt_baselines.dir/baselines.cpp.o"
  "CMakeFiles/eadt_baselines.dir/baselines.cpp.o.d"
  "libeadt_baselines.a"
  "libeadt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
