file(REMOVE_RECURSE
  "libeadt_baselines.a"
)
