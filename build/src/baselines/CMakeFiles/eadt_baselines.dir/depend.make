# Empty dependencies file for eadt_baselines.
# This may be replaced when dependencies are built.
