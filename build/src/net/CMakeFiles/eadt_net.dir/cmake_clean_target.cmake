file(REMOVE_RECURSE
  "libeadt_net.a"
)
