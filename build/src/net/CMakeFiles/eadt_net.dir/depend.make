# Empty dependencies file for eadt_net.
# This may be replaced when dependencies are built.
