file(REMOVE_RECURSE
  "CMakeFiles/eadt_net.dir/fair_share.cpp.o"
  "CMakeFiles/eadt_net.dir/fair_share.cpp.o.d"
  "CMakeFiles/eadt_net.dir/packet_sim.cpp.o"
  "CMakeFiles/eadt_net.dir/packet_sim.cpp.o.d"
  "CMakeFiles/eadt_net.dir/topology.cpp.o"
  "CMakeFiles/eadt_net.dir/topology.cpp.o.d"
  "libeadt_net.a"
  "libeadt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
