file(REMOVE_RECURSE
  "CMakeFiles/eadt_power.dir/calibrator.cpp.o"
  "CMakeFiles/eadt_power.dir/calibrator.cpp.o.d"
  "CMakeFiles/eadt_power.dir/device.cpp.o"
  "CMakeFiles/eadt_power.dir/device.cpp.o.d"
  "CMakeFiles/eadt_power.dir/end_system.cpp.o"
  "CMakeFiles/eadt_power.dir/end_system.cpp.o.d"
  "CMakeFiles/eadt_power.dir/tariff.cpp.o"
  "CMakeFiles/eadt_power.dir/tariff.cpp.o.d"
  "libeadt_power.a"
  "libeadt_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
