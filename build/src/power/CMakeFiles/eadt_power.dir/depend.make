# Empty dependencies file for eadt_power.
# This may be replaced when dependencies are built.
