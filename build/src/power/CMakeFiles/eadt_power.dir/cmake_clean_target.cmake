file(REMOVE_RECURSE
  "libeadt_power.a"
)
