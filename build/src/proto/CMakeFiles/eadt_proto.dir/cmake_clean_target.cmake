file(REMOVE_RECURSE
  "libeadt_proto.a"
)
