# Empty dependencies file for eadt_proto.
# This may be replaced when dependencies are built.
