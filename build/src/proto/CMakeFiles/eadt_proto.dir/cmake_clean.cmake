file(REMOVE_RECURSE
  "CMakeFiles/eadt_proto.dir/dataset.cpp.o"
  "CMakeFiles/eadt_proto.dir/dataset.cpp.o.d"
  "CMakeFiles/eadt_proto.dir/session.cpp.o"
  "CMakeFiles/eadt_proto.dir/session.cpp.o.d"
  "libeadt_proto.a"
  "libeadt_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
