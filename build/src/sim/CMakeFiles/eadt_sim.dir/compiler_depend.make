# Empty compiler generated dependencies file for eadt_sim.
# This may be replaced when dependencies are built.
