file(REMOVE_RECURSE
  "CMakeFiles/eadt_sim.dir/simulation.cpp.o"
  "CMakeFiles/eadt_sim.dir/simulation.cpp.o.d"
  "libeadt_sim.a"
  "libeadt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
