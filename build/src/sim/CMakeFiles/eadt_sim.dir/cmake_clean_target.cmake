file(REMOVE_RECURSE
  "libeadt_sim.a"
)
