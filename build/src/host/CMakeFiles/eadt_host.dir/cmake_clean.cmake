file(REMOVE_RECURSE
  "CMakeFiles/eadt_host.dir/server.cpp.o"
  "CMakeFiles/eadt_host.dir/server.cpp.o.d"
  "libeadt_host.a"
  "libeadt_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
