file(REMOVE_RECURSE
  "libeadt_host.a"
)
