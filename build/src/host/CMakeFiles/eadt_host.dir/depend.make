# Empty dependencies file for eadt_host.
# This may be replaced when dependencies are built.
