file(REMOVE_RECURSE
  "CMakeFiles/eadt_exp.dir/report.cpp.o"
  "CMakeFiles/eadt_exp.dir/report.cpp.o.d"
  "CMakeFiles/eadt_exp.dir/runner.cpp.o"
  "CMakeFiles/eadt_exp.dir/runner.cpp.o.d"
  "CMakeFiles/eadt_exp.dir/service.cpp.o"
  "CMakeFiles/eadt_exp.dir/service.cpp.o.d"
  "CMakeFiles/eadt_exp.dir/trace.cpp.o"
  "CMakeFiles/eadt_exp.dir/trace.cpp.o.d"
  "libeadt_exp.a"
  "libeadt_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
