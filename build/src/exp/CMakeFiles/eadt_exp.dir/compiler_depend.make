# Empty compiler generated dependencies file for eadt_exp.
# This may be replaced when dependencies are built.
