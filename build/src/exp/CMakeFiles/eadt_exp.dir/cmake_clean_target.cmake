file(REMOVE_RECURSE
  "libeadt_exp.a"
)
