file(REMOVE_RECURSE
  "CMakeFiles/eadt_util.dir/config.cpp.o"
  "CMakeFiles/eadt_util.dir/config.cpp.o.d"
  "CMakeFiles/eadt_util.dir/rng.cpp.o"
  "CMakeFiles/eadt_util.dir/rng.cpp.o.d"
  "CMakeFiles/eadt_util.dir/stats.cpp.o"
  "CMakeFiles/eadt_util.dir/stats.cpp.o.d"
  "CMakeFiles/eadt_util.dir/table.cpp.o"
  "CMakeFiles/eadt_util.dir/table.cpp.o.d"
  "libeadt_util.a"
  "libeadt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eadt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
