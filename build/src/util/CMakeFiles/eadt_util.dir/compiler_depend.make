# Empty compiler generated dependencies file for eadt_util.
# This may be replaced when dependencies are built.
