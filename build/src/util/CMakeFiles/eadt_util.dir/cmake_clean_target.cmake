file(REMOVE_RECURSE
  "libeadt_util.a"
)
