
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_algorithms.cpp" "tests/CMakeFiles/eadt_tests.dir/test_algorithms.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_algorithms.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/eadt_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bench_options.cpp" "tests/CMakeFiles/eadt_tests.dir/test_bench_options.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_bench_options.cpp.o.d"
  "/root/repo/tests/test_calibrator.cpp" "tests/CMakeFiles/eadt_tests.dir/test_calibrator.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_calibrator.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/eadt_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_config_testbed.cpp" "tests/CMakeFiles/eadt_tests.dir/test_config_testbed.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_config_testbed.cpp.o.d"
  "/root/repo/tests/test_dataset.cpp" "tests/CMakeFiles/eadt_tests.dir/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_dataset.cpp.o.d"
  "/root/repo/tests/test_device_power.cpp" "tests/CMakeFiles/eadt_tests.dir/test_device_power.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_device_power.cpp.o.d"
  "/root/repo/tests/test_energy_budget.cpp" "tests/CMakeFiles/eadt_tests.dir/test_energy_budget.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_energy_budget.cpp.o.d"
  "/root/repo/tests/test_exp_runner.cpp" "tests/CMakeFiles/eadt_tests.dir/test_exp_runner.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_exp_runner.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/eadt_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fair_share.cpp" "tests/CMakeFiles/eadt_tests.dir/test_fair_share.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_fair_share.cpp.o.d"
  "/root/repo/tests/test_golden.cpp" "tests/CMakeFiles/eadt_tests.dir/test_golden.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_golden.cpp.o.d"
  "/root/repo/tests/test_host.cpp" "tests/CMakeFiles/eadt_tests.dir/test_host.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_host.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/eadt_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_model_based.cpp" "tests/CMakeFiles/eadt_tests.dir/test_model_based.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_model_based.cpp.o.d"
  "/root/repo/tests/test_packet_sim.cpp" "tests/CMakeFiles/eadt_tests.dir/test_packet_sim.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_packet_sim.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/eadt_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/eadt_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/eadt_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/eadt_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_service.cpp" "tests/CMakeFiles/eadt_tests.dir/test_service.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_service.cpp.o.d"
  "/root/repo/tests/test_session.cpp" "tests/CMakeFiles/eadt_tests.dir/test_session.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_session.cpp.o.d"
  "/root/repo/tests/test_session_policies.cpp" "tests/CMakeFiles/eadt_tests.dir/test_session_policies.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_session_policies.cpp.o.d"
  "/root/repo/tests/test_simulation.cpp" "tests/CMakeFiles/eadt_tests.dir/test_simulation.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_simulation.cpp.o.d"
  "/root/repo/tests/test_sla.cpp" "tests/CMakeFiles/eadt_tests.dir/test_sla.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_sla.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/eadt_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/eadt_tests.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_tariff.cpp" "tests/CMakeFiles/eadt_tests.dir/test_tariff.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_tariff.cpp.o.d"
  "/root/repo/tests/test_tcp_model.cpp" "tests/CMakeFiles/eadt_tests.dir/test_tcp_model.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_tcp_model.cpp.o.d"
  "/root/repo/tests/test_testbeds.cpp" "tests/CMakeFiles/eadt_tests.dir/test_testbeds.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_testbeds.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/eadt_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/eadt_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_tuner.cpp" "tests/CMakeFiles/eadt_tests.dir/test_tuner.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_tuner.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/eadt_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/eadt_tests.dir/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/eadt_exp.dir/DependInfo.cmake"
  "/root/repo/build/bench-build/CMakeFiles/eadt_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/eadt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eadt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/testbeds/CMakeFiles/eadt_testbeds.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/eadt_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eadt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eadt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eadt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/eadt_host.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eadt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
