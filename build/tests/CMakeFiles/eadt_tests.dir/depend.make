# Empty dependencies file for eadt_tests.
# This may be replaced when dependencies are built.
